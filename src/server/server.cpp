#include "server/server.hpp"

#include <algorithm>
#include <chrono>
#include <exception>

#include "util/timer.hpp"

namespace parsh::server {

QueryServer::QueryServer(const Graph& g, const ApproxShortestPaths& engine,
                         ServerConfig cfg)
    : engine_(&engine),
      n_(g.num_vertices()),
      cfg_(cfg),
      injector_(cfg.enable_faults
                    ? std::make_unique<FaultInjector>(cfg.fault_seed, cfg.faults)
                    : nullptr),
      admission_(cfg.admission, &metrics_, injector_.get()) {}

QueryServer::QueryServer(DynamicApproxShortestPaths& dynamic, ServerConfig cfg)
    : dynamic_(&dynamic),
      n_(dynamic.num_vertices()),
      cfg_(cfg),
      injector_(cfg.enable_faults
                    ? std::make_unique<FaultInjector>(cfg.fault_seed, cfg.faults)
                    : nullptr),
      admission_(cfg.admission, &metrics_, injector_.get()) {
  if (injector_ != nullptr) {
    // The swap site fires on the updating thread with the new snapshot
    // fully built but not yet published — a stall here is the widest
    // query-during-swap window the concurrency tests can ask for.
    FaultInjector* inj = injector_.get();
    dynamic_->set_swap_hook([inj] {
      const FaultAction act = inj->next(FaultSite::kSwap);
      if (act.kind == FaultAction::Kind::kStall) {
        std::this_thread::sleep_for(std::chrono::microseconds(act.delay_us));
      }
    });
  }
}

QueryServer::QueryServer(Durability& durable, ServerConfig cfg)
    : QueryServer(durable.engine(), std::move(cfg)) {
  durable_ = &durable;
  metrics_.recovered_updates.store(durable.recovery().replayed,
                                   std::memory_order_relaxed);
}

QueryServer::~QueryServer() { stop(); }

void QueryServer::start() {
  if (started_) return;
  started_ = true;
  // A peer that dies mid-response must surface as EPIPE through the
  // Status taxonomy, never as a process-killing signal.
  ignore_sigpipe();
  const std::size_t pool_size =
      cfg_.pool_workspaces > 0 ? cfg_.pool_workspaces : std::max<std::size_t>(1, cfg_.query_workers);
  pool_.prepare_serving(pool_size);
  for (std::size_t i = 0; i < std::max<std::size_t>(1, cfg_.query_workers); ++i) {
    workers_.emplace_back([this] { worker_loop_(); });
  }
}

Status QueryServer::listen_tcp(std::uint16_t port) {
  start();
  const Status s = listener_.listen_loopback(port);
  if (!s.ok()) return s;
  acceptor_ = std::thread([this] { acceptor_loop_(); });
  return Status::success();
}

void QueryServer::acceptor_loop_() {
  while (!stopping_.load(std::memory_order_acquire)) {
    FdStream stream;
    // Short slices so a stop() that raced the shutdown wakeup is still
    // noticed promptly.
    const Status s = listener_.accept(&stream, Deadline::after_ms(100));
    if (s.ok()) {
      serve_stream(std::move(stream));
      continue;
    }
    if (s.code == StatusCode::kDeadlineExceeded) continue;
    break;  // listener closed or broken
  }
}

void QueryServer::serve_stream(FdStream stream) {
  start();
  auto conn = std::make_shared<Connection>();
  conn->stream = std::move(stream);
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conn->id = next_conn_id_++;
    conns_.push_back(conn);
  }
  metrics_.bump(metrics_.connections_opened);
  conn->reader = std::thread([this, conn] { reader_loop_(conn.get()); });
}

std::shared_ptr<QueryServer::Connection> QueryServer::find_connection_(
    std::uint64_t id) {
  std::lock_guard<std::mutex> lock(conns_mu_);
  for (const auto& c : conns_) {
    if (c->id == id && !c->closing.load(std::memory_order_acquire)) return c;
  }
  return nullptr;
}

void QueryServer::shutdown_connection_(Connection& conn) {
  const bool first = !conn.closing.exchange(true, std::memory_order_acq_rel);
  {
    // Shutdown under the write mutex: a worker mid-write finishes first,
    // and later writers observe `closing` before touching the stream.
    // The fd itself stays open — only the reader (or stop(), after
    // joining the reader) may close it, so a thread parked in poll can
    // never wake up on a recycled descriptor number.
    std::lock_guard<std::mutex> lock(conn.write_mu);
    conn.stream.shutdown_both();
  }
  if (first) metrics_.bump(metrics_.connections_closed);
}

void QueryServer::release_connection_(Connection& conn) {
  shutdown_connection_(conn);
  // Owner-side close: the reader has exited (we are it, or it has been
  // joined), and `closing` is set so no writer past the mutex will use
  // the fd again.
  std::lock_guard<std::mutex> lock(conn.write_mu);
  conn.stream.close();
}

void QueryServer::write_frame_(Connection& conn, const std::vector<std::uint8_t>& bytes) {
  bool failed = false;
  {
    std::lock_guard<std::mutex> lock(conn.write_mu);
    if (conn.closing.load(std::memory_order_acquire)) return;
    const Status s = conn.stream.write_frame(
        bytes, Deadline::after_ms(cfg_.write_deadline_ms), injector_.get());
    failed = !s.ok();
  }
  if (failed) shutdown_connection_(conn);
}

void QueryServer::reader_loop_(Connection* conn) {
  for (;;) {
    if (stopping_.load(std::memory_order_acquire) ||
        conn->closing.load(std::memory_order_acquire)) {
      break;
    }
    if (injector_ != nullptr &&
        injector_->next(FaultSite::kReadFrame).kind ==
            FaultAction::Kind::kDropConnection) {
      break;
    }
    Frame frame;
    // Reads park on poll indefinitely; stop()/close_connection_'s
    // shutdown wakes them with EOF.
    const Status s = conn->stream.read_frame(&frame, Deadline::never());
    if (!s.ok()) {
      if (s.code == StatusCode::kInvalidArgument) {
        // Malformed frame: the stream is desynchronized. Say why, then
        // hang up — never try to guess where the next frame starts.
        metrics_.bump(metrics_.invalid_frames);
        std::vector<std::uint8_t> err;
        encode_error(err, s);
        write_frame_(*conn, err);
      }
      break;
    }
    metrics_.bump(metrics_.frames_received);
    switch (frame.type) {
      case FrameType::kPing: {
        std::uint64_t nonce = 0;
        if (!decode_ping(frame.payload, &nonce).ok()) {
          metrics_.bump(metrics_.invalid_frames);
          break;
        }
        std::vector<std::uint8_t> pong;
        encode_ping(pong, nonce, /*pong=*/true);
        write_frame_(*conn, pong);
        break;
      }
      case FrameType::kStatsRequest: {
        std::vector<std::uint8_t> out;
        encode_stats_response(out, stats());
        write_frame_(*conn, out);
        break;
      }
      case FrameType::kQueryRequest:
        handle_query_(*conn, frame.payload);
        break;
      case FrameType::kUpdateRequest:
        // Applied right here on the reader thread: updates never enter
        // the admission queue, never occupy a query worker, and therefore
        // can never shed a query. Workers keep draining batches against
        // the pre-swap snapshot while the rebuild runs.
        handle_update_(*conn, frame.payload);
        break;
      default: {
        // Well-formed but client-illegal (a response type sent at us):
        // protocol violation, same treatment as malformed.
        metrics_.bump(metrics_.invalid_frames);
        std::vector<std::uint8_t> err;
        encode_error(err, Status::fail(StatusCode::kInvalidArgument,
                                       "unexpected frame type from client"));
        write_frame_(*conn, err);
        shutdown_connection_(*conn);
        break;
      }
    }
  }
  release_connection_(*conn);
}

void QueryServer::handle_query_(Connection& conn,
                                const std::vector<std::uint8_t>& payload) {
  QueryRequest req;
  const Status ds = decode_query_request(payload, &req);
  if (!ds.ok()) {
    metrics_.bump(metrics_.invalid_frames);
    std::vector<std::uint8_t> err;
    encode_error(err, ds);
    write_frame_(conn, err);
    shutdown_connection_(conn);
    return;
  }
  const std::uint64_t req_id = req.id;
  PendingRequest pr;
  pr.conn_id = conn.id;
  pr.deadline = Deadline::after_ms(req.deadline_ms > 0
                                       ? static_cast<double>(req.deadline_ms)
                                       : cfg_.admission.default_deadline_ms);
  pr.req = std::move(req);
  std::uint32_t retry_after_ms = 0;
  const Status admitted = admission_.offer(std::move(pr), &retry_after_ms);
  if (!admitted.ok()) {
    QueryResponse resp;
    resp.id = req_id;
    resp.status = admitted.code;
    resp.retry_after_ms = retry_after_ms;
    std::vector<std::uint8_t> out;
    encode_query_response(out, resp);
    write_frame_(conn, out);
  }
}

void QueryServer::handle_update_(Connection& conn,
                                 const std::vector<std::uint8_t>& payload) {
  UpdateRequest req;
  const Status ds = decode_update_request(payload, &req);
  if (!ds.ok()) {
    metrics_.bump(metrics_.invalid_frames);
    std::vector<std::uint8_t> err;
    encode_error(err, ds);
    write_frame_(conn, err);
    shutdown_connection_(conn);
    return;
  }

  UpdateResponse resp;
  resp.id = req.id;
  if (dynamic_ == nullptr) {
    // A static server has nothing to apply an update to; the frame is
    // well-formed, the deployment just doesn't support it.
    resp.status = StatusCode::kUnavailable;
    metrics_.bump(metrics_.updates_rejected);
  } else {
    // Endpoint range is checked before anything is applied, mirroring the
    // per-query OUT_OF_RANGE convention: an invalid batch leaves the
    // graph (and the epoch counter) untouched.
    bool in_range = true;
    for (const Edge& e : req.insert) {
      if (e.u >= n_ || e.v >= n_) in_range = false;
    }
    for (const Edge& e : req.remove) {
      if (e.u >= n_ || e.v >= n_) in_range = false;
    }
    if (!in_range) {
      resp.status = StatusCode::kOutOfRange;
      metrics_.bump(metrics_.updates_rejected);
    } else if (durable_ != nullptr) {
      // The durable path: the coordinator owns dedup, WAL-before-publish
      // and checkpoints, and never throws. A duplicate replay is neither
      // applied nor rejected — it bumps updates_deduped inside.
      durable_->handle_update(req, &resp, injector_.get(), &metrics_);
      if (resp.status == StatusCode::kOk) {
        if ((resp.flags & kUpdateFlagDuplicate) == 0) {
          metrics_.bump(metrics_.updates_applied);
        }
      } else {
        metrics_.bump(metrics_.updates_rejected);
      }
    } else {
      try {
        GraphDelta delta;
        delta.insert = std::move(req.insert);
        delta.remove = std::move(req.remove);
        const DynamicApproxShortestPaths::ApplyResult r = dynamic_->apply(delta);
        resp.status = StatusCode::kOk;
        resp.epoch = r.epoch;
        resp.rebuild_ms = r.rebuild_ms;
        resp.dirty_scales = static_cast<std::uint32_t>(r.hopset.dirty_scales);
        resp.total_scales = static_cast<std::uint32_t>(r.hopset.total_scales);
        resp.dirty_clusters = r.hopset.dirty_clusters;
        resp.total_clusters = r.hopset.total_clusters;
        resp.inserted = r.inserted;
        resp.removed = r.removed;
        resp.reweighted = r.reweighted;
        resp.noops = r.noops;
        if (r.hopset.full_rebuild) resp.flags |= kUpdateFlagFullRebuild;
        metrics_.bump(metrics_.updates_applied);
      } catch (const std::exception&) {
        // Decode + range checks should have caught everything; anything
        // else is the no-exceptions-across-the-boundary clause.
        resp.status = StatusCode::kInternal;
        metrics_.bump(metrics_.updates_rejected);
      }
    }
  }
  std::vector<std::uint8_t> out;
  encode_update_response(out, resp);
  write_frame_(conn, out);
}

void QueryServer::serve_request_(const PendingRequest& pr, std::size_t skip_scales) {
  QueryResponse resp;
  resp.id = pr.req.id;

  // Pin ONE snapshot for the whole batch. Every answer then comes from a
  // single epoch, and the snapshot's storage handles keep the graph (mmap
  // pages included) alive even if an update swaps — or the backing file
  // is unlinked — mid-batch. Null on the static path, where the engine
  // reference is owned by the caller for the server's whole lifetime.
  std::shared_ptr<const DynamicApproxShortestPaths::Snapshot> snap;
  const ApproxShortestPaths* engine = engine_;
  vid n = n_;
  if (dynamic_ != nullptr) {
    snap = dynamic_->snapshot();
    engine = &snap->engine;
    n = snap->graph.num_vertices();
    resp.epoch = snap->epoch;
  }
  const std::vector<std::pair<vid, vid>>& pairs = pr.req.pairs;
  resp.answers.resize(pairs.size());

  // Out-of-range ids answer individually; only in-range pairs reach the
  // engine.
  std::vector<ApproxShortestPaths::QueryPair> valid;
  std::vector<std::size_t> slot;
  valid.reserve(pairs.size());
  slot.reserve(pairs.size());
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    if (pairs[i].first >= n || pairs[i].second >= n) {
      resp.answers[i].status = StatusCode::kOutOfRange;
      resp.answers[i].estimate = kInfWeight;
      metrics_.bump(metrics_.queries_out_of_range);
    } else {
      valid.push_back(pairs[i]);
      slot.push_back(i);
    }
  }

  bool any_partial = false;
  bool any_degraded = false;
  if (!valid.empty()) {
    SsspWorkspacePool::Lease lease = pool_.checkout(pr.deadline);
    if (!lease) {
      // The workspace pool is the second admission surface: a checkout
      // that outlives the request's budget becomes a partial answer, not
      // an unbounded wait.
      metrics_.bump(metrics_.pool_checkout_timeouts);
      for (std::size_t i = 0; i < valid.size(); ++i) {
        resp.answers[slot[i]].status = StatusCode::kDeadlineExceeded;
        resp.answers[slot[i]].estimate = kInfWeight;
        metrics_.bump(metrics_.queries_deadline_exceeded);
      }
      any_partial = true;
    } else {
      ApproxShortestPaths::QueryOptions opts;
      opts.deadline = pr.deadline;
      opts.skip_scales = skip_scales;
      std::vector<ApproxShortestPaths::QueryResult> results;
      try {
        results = engine->query_batch(valid, *lease, opts);
      } catch (const std::exception&) {
        // The no-exceptions-across-the-boundary clause: convert, answer,
        // keep serving.
        for (std::size_t i = 0; i < valid.size(); ++i) {
          resp.answers[slot[i]].status = StatusCode::kInternal;
          resp.answers[slot[i]].estimate = kInfWeight;
        }
        results.clear();
      }
      for (std::size_t i = 0; i < results.size(); ++i) {
        QueryAnswer& a = resp.answers[slot[i]];
        a.estimate = results[i].estimate;
        a.scale = static_cast<std::uint32_t>(results[i].scale_used);
        if (results[i].deadline_exceeded) {
          a.status = StatusCode::kDeadlineExceeded;
          any_partial = true;
          metrics_.bump(metrics_.queries_deadline_exceeded);
        } else {
          a.status = StatusCode::kOk;
          metrics_.bump(metrics_.queries_ok);
        }
        if (results[i].degraded) {
          any_degraded = true;
          metrics_.bump(metrics_.queries_degraded);
        }
      }
    }
  }

  resp.status = any_partial ? StatusCode::kDeadlineExceeded : StatusCode::kOk;
  if (any_partial) resp.flags |= kRespFlagPartial;
  if (any_degraded) resp.flags |= kRespFlagDegraded;
  metrics_.bump(metrics_.batches_served);
  if (dynamic_ != nullptr && dynamic_->note_batch_served(snap->epoch)) {
    metrics_.bump(metrics_.stale_batches);
  }

  if (const std::shared_ptr<Connection> conn = find_connection_(pr.conn_id)) {
    std::vector<std::uint8_t> out;
    encode_query_response(out, resp);
    write_frame_(*conn, out);
  }
  // A vanished connection drops the response on the floor — the work was
  // already deadline-bounded, and nobody is listening.
}

void QueryServer::worker_loop_() {
  std::vector<PendingRequest> batch;
  std::size_t skip_scales = 0;
  while (admission_.take_batch(&batch, &skip_scales)) {
    if (injector_ != nullptr) {
      const FaultAction act = injector_->next(FaultSite::kWorkerLoop);
      if (act.kind == FaultAction::Kind::kStall) {
        std::this_thread::sleep_for(std::chrono::microseconds(act.delay_us));
      }
    }
    Timer timer;
    std::size_t queries = 0;
    for (const PendingRequest& pr : batch) {
      queries += pr.req.pairs.size();
      serve_request_(pr, skip_scales);
    }
    admission_.finish_batch(queries, timer.millis());
  }
}

void QueryServer::stop() {
  if (stopped_) return;
  stopped_ = true;
  stopping_.store(true, std::memory_order_release);

  // 1. Stop the intake: no new connections, wake the acceptor.
  listener_.shutdown_both();
  if (acceptor_.joinable()) acceptor_.join();
  listener_.close();

  // 2. Wake readers parked in poll; they stop enqueueing and exit.
  //    Shutdown only — the fds are closed in step 4 after the readers
  //    are joined, so no reader can race the close.
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (const auto& c : conns_) shutdown_connection_(*c);
  }

  // 3. Drain the admitted backlog, then release the workers.
  admission_.stop();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();

  // 4. Join readers and release every fd.
  std::vector<std::shared_ptr<Connection>> conns;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns.swap(conns_);
  }
  for (const auto& c : conns) {
    if (c->reader.joinable()) c->reader.join();
    release_connection_(*c);
  }
}

StatsSnapshot QueryServer::stats() const {
  return metrics_.snapshot(injector_ ? injector_->injected() : 0);
}

std::size_t QueryServer::open_connections() const {
  std::lock_guard<std::mutex> lock(conns_mu_);
  std::size_t open = 0;
  for (const auto& c : conns_) {
    if (!c->closing.load(std::memory_order_acquire)) ++open;
  }
  return open;
}

}  // namespace parsh::server
