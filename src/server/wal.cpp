#include "server/wal.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "graph/io.hpp"

namespace parsh::server {

namespace {

constexpr char kWalMagic[8] = {'p', 'a', 'r', 's', 'h', 'W', 'A', 'L'};

Status errno_status(const char* what) {
  return Status::fail(StatusCode::kUnavailable,
                      std::string(what) + ": " + std::strerror(errno));
}

/// write(2) the whole buffer, riding out EINTR and short writes. Returns
/// bytes written before the first hard error (== len on success).
std::size_t write_some(int fd, const std::uint8_t* p, std::size_t len) {
  std::size_t done = 0;
  while (done < len) {
    const ssize_t r = ::write(fd, p + done, len - done);
    if (r < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (r == 0) break;
    done += static_cast<std::size_t>(r);
  }
  return done;
}

int ftruncate_retry(int fd, off_t len) {
  int r;
  do {
    r = ::ftruncate(fd, len);
  } while (r != 0 && errno == EINTR);
  return r;
}

int fsync_retry(int fd) {
  int r;
  do {
    r = ::fsync(fd);
  } while (r != 0 && errno == EINTR);
  return r;
}

}  // namespace

// ---- record codec -----------------------------------------------------------

void encode_update_result(std::vector<std::uint8_t>& out, const UpdateResponse& r) {
  wire::put_u32(out, static_cast<std::uint32_t>(r.status));
  wire::put_u32(out, r.flags);
  wire::put_u64(out, r.epoch);
  wire::put_f64(out, r.rebuild_ms);
  wire::put_u32(out, r.dirty_scales);
  wire::put_u32(out, r.total_scales);
  wire::put_u64(out, r.dirty_clusters);
  wire::put_u64(out, r.total_clusters);
  wire::put_u64(out, r.inserted);
  wire::put_u64(out, r.removed);
  wire::put_u64(out, r.reweighted);
  wire::put_u64(out, r.noops);
}

Status decode_update_result(const std::uint8_t* data, std::size_t len,
                            UpdateResponse* out) {
  if (len < kUpdateResultBytes) {
    return Status::fail(StatusCode::kInvalidArgument, "result block: short");
  }
  const std::uint32_t code = wire::get_u32(data);
  if (code > static_cast<std::uint32_t>(StatusCode::kInternal)) {
    return Status::fail(StatusCode::kInvalidArgument,
                        "result block: unknown status code " + std::to_string(code));
  }
  out->id = 0;
  out->status = static_cast<StatusCode>(code);
  out->flags = wire::get_u32(data + 4);
  out->epoch = wire::get_u64(data + 8);
  out->rebuild_ms = wire::get_f64(data + 16);
  out->dirty_scales = wire::get_u32(data + 24);
  out->total_scales = wire::get_u32(data + 28);
  out->dirty_clusters = wire::get_u64(data + 32);
  out->total_clusters = wire::get_u64(data + 40);
  out->inserted = wire::get_u64(data + 48);
  out->removed = wire::get_u64(data + 56);
  out->reweighted = wire::get_u64(data + 64);
  out->noops = wire::get_u64(data + 72);
  return Status::success();
}

void encode_wal_record(std::vector<std::uint8_t>& out, const WalRecord& rec) {
  out.push_back(1);  // payload type: update
  wire::put_u64(out, rec.epoch);
  wire::put_u64(out, rec.client_id);
  wire::put_u64(out, rec.sequence);
  encode_update_result(out, rec.result);
  write_delta_binary(out, rec.delta);
}

Status decode_wal_record(const std::uint8_t* data, std::size_t len, WalRecord* out) {
  constexpr std::size_t kFixed = 1 + 3 * 8 + kUpdateResultBytes;
  if (len < kFixed) {
    return Status::fail(StatusCode::kInvalidArgument, "wal record: short payload");
  }
  if (data[0] != 1) {
    return Status::fail(StatusCode::kInvalidArgument,
                        "wal record: unknown type " + std::to_string(data[0]));
  }
  out->epoch = wire::get_u64(data + 1);
  out->client_id = wire::get_u64(data + 9);
  out->sequence = wire::get_u64(data + 17);
  Status s = decode_update_result(data + 25, len - 25, &out->result);
  if (!s.ok()) return s;
  std::size_t consumed = 0;
  try {
    consumed = read_delta_binary(data + kFixed, len - kFixed, &out->delta);
  } catch (const IoError& e) {
    return Status::fail(StatusCode::kInvalidArgument,
                        std::string("wal record: ") + e.what());
  }
  if (kFixed + consumed != len) {
    return Status::fail(StatusCode::kInvalidArgument,
                        "wal record: trailing bytes after delta");
  }
  return Status::success();
}

// ---- segment naming ---------------------------------------------------------

std::string wal_segment_name(std::uint64_t first_epoch) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "wal-%016llx.log",
                static_cast<unsigned long long>(first_epoch));
  return buf;
}

bool parse_wal_segment_name(const std::string& name, std::uint64_t* first_epoch) {
  // "wal-" + 16 hex digits + ".log" = 24 chars.
  if (name.size() != 24 || name.rfind("wal-", 0) != 0 ||
      name.compare(20, 4, ".log") != 0) {
    return false;
  }
  std::uint64_t v = 0;
  for (std::size_t i = 4; i < 20; ++i) {
    const char c = name[i];
    int d;
    if (c >= '0' && c <= '9') d = c - '0';
    else if (c >= 'a' && c <= 'f') d = c - 'a' + 10;
    else return false;
    v = (v << 4) | static_cast<std::uint64_t>(d);
  }
  if (first_epoch) *first_epoch = v;
  return true;
}

std::vector<std::string> list_wal_segments(const std::string& dir) {
  std::vector<std::pair<std::uint64_t, std::string>> found;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    std::uint64_t e = 0;
    if (parse_wal_segment_name(entry.path().filename().string(), &e)) {
      found.emplace_back(e, entry.path().string());
    }
  }
  std::sort(found.begin(), found.end());
  std::vector<std::string> out;
  out.reserve(found.size());
  for (auto& [e, p] : found) out.push_back(std::move(p));
  return out;
}

// ---- writer -----------------------------------------------------------------

WalWriter::~WalWriter() { close(); }

Status WalWriter::open(const std::string& dir, std::uint64_t first_epoch,
                       WalOptions opt) {
  close();
  dir_ = dir;
  opt_ = opt;
  sealed_ = false;
  dirty_tail_ = false;
  since_fsync_ = 0;
  path_ = dir + "/" + wal_segment_name(first_epoch);
  fd_ = ::open(path_.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd_ < 0) return errno_status("wal open");

  struct stat st{};
  if (::fstat(fd_, &st) != 0) {
    const Status s = errno_status("wal fstat");
    close();
    return s;
  }
  if (static_cast<std::size_t>(st.st_size) < kWalSegmentHeaderBytes) {
    // Fresh segment (or a crash landed between create and header write):
    // start over with a clean header.
    if (ftruncate_retry(fd_, 0) != 0) {
      const Status s = errno_status("wal truncate");
      close();
      return s;
    }
    std::vector<std::uint8_t> hdr;
    hdr.insert(hdr.end(), kWalMagic, kWalMagic + 8);
    wire::put_u32(hdr, kWalVersion);
    wire::put_u64(hdr, first_epoch);
    wire::put_u32(hdr, 0);  // reserved
    if (write_some(fd_, hdr.data(), hdr.size()) != hdr.size()) {
      const Status s = errno_status("wal header write");
      close();
      return s;
    }
    committed_ = hdr.size();
  } else {
    std::uint8_t hdr[kWalSegmentHeaderBytes];
    if (::pread(fd_, hdr, sizeof(hdr), 0) !=
        static_cast<ssize_t>(sizeof(hdr))) {
      const Status s = errno_status("wal header read");
      close();
      return s;
    }
    if (std::memcmp(hdr, kWalMagic, 8) != 0 ||
        wire::get_u32(hdr + 8) != kWalVersion) {
      close();
      return Status::fail(StatusCode::kInvalidArgument,
                          "wal open: bad segment header in " + path_);
    }
    // Recovery scans and truncates before reopening, so whatever length
    // the file has is the committed prefix.
    committed_ = static_cast<std::uint64_t>(st.st_size);
    if (::lseek(fd_, static_cast<off_t>(committed_), SEEK_SET) < 0) {
      const Status s = errno_status("wal seek");
      close();
      return s;
    }
    return Status::success();
  }
  return Status::success();
}

Status WalWriter::heal_tail_() {
  // A failed append left un-committed bytes at the tail. Cut them off
  // before anything else lands, or a later record would sit after garbage
  // and be unreachable to the recovery scan.
  if (ftruncate_retry(fd_, static_cast<off_t>(committed_)) != 0 ||
      ::lseek(fd_, static_cast<off_t>(committed_), SEEK_SET) < 0) {
    sealed_ = true;
    return Status::fail(StatusCode::kUnavailable,
                        "wal sealed: tail heal failed: " +
                            std::string(std::strerror(errno)));
  }
  dirty_tail_ = false;
  return Status::success();
}

Status WalWriter::do_fsync_(ServerMetrics* metrics) {
  if (fsync_retry(fd_) != 0) return errno_status("wal fsync");
  ++fsyncs_;
  since_fsync_ = 0;
  if (metrics) metrics->bump(metrics->wal_fsyncs);
  return Status::success();
}

Status WalWriter::append(const WalRecord& rec, FaultInjector* injector,
                         ServerMetrics* metrics) {
  if (sealed_) {
    return Status::fail(StatusCode::kUnavailable, "wal writer sealed");
  }
  if (fd_ < 0) {
    return Status::fail(StatusCode::kInternal, "wal writer not open");
  }
  if (dirty_tail_) {
    Status s = heal_tail_();
    if (!s.ok()) return s;
  }

  std::vector<std::uint8_t> payload;
  payload.reserve(128 + 16 * (rec.delta.insert.size() + rec.delta.remove.size()));
  encode_wal_record(payload, rec);
  if (payload.size() > kWalMaxPayloadBytes) {
    return Status::fail(StatusCode::kInvalidArgument, "wal record too large");
  }
  std::vector<std::uint8_t> framed;
  framed.reserve(kWalRecordHeaderBytes + payload.size());
  wire::put_u32(framed, kWalRecordMarker);
  wire::put_u32(framed, static_cast<std::uint32_t>(payload.size()));
  wire::put_u64(framed, wire::fnv1a_bytes(payload.data(), payload.size()));
  framed.insert(framed.end(), payload.begin(), payload.end());

  if (injector) {
    const FaultAction act = injector->next(FaultSite::kWalAppend);
    if (act.kind == FaultAction::Kind::kTearWrite) {
      // Put the same bytes on disk a mid-append crash would, then fail
      // the update. The tail stays dirty until healed (or, if the process
      // dies first, until recovery truncates it).
      const std::size_t tear = std::min<std::size_t>(
          static_cast<std::size_t>(act.amount), framed.size());
      (void)write_some(fd_, framed.data(), tear);
      dirty_tail_ = true;
      return Status::fail(StatusCode::kUnavailable, "injected torn wal append");
    }
  }

  if (write_some(fd_, framed.data(), framed.size()) != framed.size()) {
    dirty_tail_ = true;
    return errno_status("wal append");
  }

  bool need_sync = false;
  switch (opt_.fsync) {
    case FsyncPolicy::kEveryBatch:
      need_sync = true;
      break;
    case FsyncPolicy::kEveryN:
      need_sync = ++since_fsync_ >= std::max<std::uint64_t>(opt_.fsync_every_n, 1);
      break;
    case FsyncPolicy::kOff:
      break;
  }
  if (need_sync) {
    if (injector) {
      const FaultAction act = injector->next(FaultSite::kWalFsync);
      if (act.kind == FaultAction::Kind::kFailOp) {
        // The bytes made it to the fd but durability is unknown — treat
        // the record as uncommitted and cut it back out, exactly like a
        // real fsync error.
        dirty_tail_ = true;
        return Status::fail(StatusCode::kUnavailable, "injected wal fsync failure");
      }
    }
    Status s = do_fsync_(metrics);
    if (!s.ok()) {
      dirty_tail_ = true;
      return s;
    }
  }

  committed_ += framed.size();
  ++records_;
  bytes_ += framed.size();
  if (metrics) metrics->bump(metrics->wal_records);
  return Status::success();
}

Status WalWriter::sync(ServerMetrics* metrics) {
  if (sealed_) {
    return Status::fail(StatusCode::kUnavailable, "wal writer sealed");
  }
  if (fd_ < 0) return Status::success();
  if (dirty_tail_) {
    Status s = heal_tail_();
    if (!s.ok()) return s;
  }
  return do_fsync_(metrics);
}

Status WalWriter::rotate(std::uint64_t first_epoch, ServerMetrics* metrics) {
  Status s = sync(metrics);
  if (!s.ok()) return s;
  const std::string dir = dir_;
  const WalOptions opt = opt_;
  close();
  return open(dir, first_epoch, opt);
}

void WalWriter::close() {
  if (fd_ >= 0) {
    if (dirty_tail_) {
      // An orderly close must not leave an un-acknowledged record behind:
      // the client was told the append failed and will retry it. Best
      // effort — if the truncate fails we are in the crash case anyway,
      // and the recovery scan owns the tail.
      (void)ftruncate_retry(fd_, static_cast<off_t>(committed_));
    }
    ::close(fd_);
    fd_ = -1;
  }
  committed_ = 0;
  dirty_tail_ = false;
}

// ---- reader -----------------------------------------------------------------

Status scan_wal_segment(const std::string& path, WalScan* out) {
  *out = WalScan{};
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return errno_status("wal scan open");
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    const Status s = errno_status("wal scan fstat");
    ::close(fd);
    return s;
  }
  std::vector<std::uint8_t> buf(static_cast<std::size_t>(st.st_size));
  std::size_t got = 0;
  while (got < buf.size()) {
    const ssize_t r = ::read(fd, buf.data() + got, buf.size() - got);
    if (r < 0) {
      if (errno == EINTR) continue;
      const Status s = errno_status("wal scan read");
      ::close(fd);
      return s;
    }
    if (r == 0) break;
    got += static_cast<std::size_t>(r);
  }
  ::close(fd);
  buf.resize(got);
  out->file_bytes = got;

  if (got < kWalSegmentHeaderBytes ||
      std::memcmp(buf.data(), kWalMagic, 8) != 0 ||
      wire::get_u32(buf.data() + 8) != kWalVersion) {
    out->torn = true;
    out->torn_reason = "invalid segment header";
    out->valid_bytes = 0;
    return Status::fail(StatusCode::kInvalidArgument,
                        "wal segment header invalid: " + path);
  }
  out->version = wire::get_u32(buf.data() + 8);
  out->first_epoch = wire::get_u64(buf.data() + 12);

  std::size_t off = kWalSegmentHeaderBytes;
  out->valid_bytes = off;
  std::uint64_t expect_epoch = out->first_epoch;
  auto stop = [&](const char* why) {
    out->torn = true;
    out->torn_reason = why;
  };
  while (off + kWalRecordHeaderBytes <= got) {
    const std::uint8_t* p = buf.data() + off;
    if (wire::get_u32(p) != kWalRecordMarker) {
      stop("bad record marker");
      break;
    }
    const std::uint32_t len = wire::get_u32(p + 4);
    if (len == 0 || len > kWalMaxPayloadBytes) {
      stop("impossible record length");
      break;
    }
    if (off + kWalRecordHeaderBytes + len > got) {
      stop("short payload (torn tail)");
      break;
    }
    const std::uint64_t sum = wire::get_u64(p + 8);
    const std::uint8_t* payload = p + kWalRecordHeaderBytes;
    if (wire::fnv1a_bytes(payload, len) != sum) {
      stop("record checksum mismatch");
      break;
    }
    WalRecord rec;
    Status s = decode_wal_record(payload, len, &rec);
    if (!s.ok()) {
      stop("undecodable record");
      out->torn_reason += ": " + s.message;
      break;
    }
    if (rec.epoch != expect_epoch) {
      stop("epoch discontinuity");
      break;
    }
    ++expect_epoch;
    out->records.push_back(std::move(rec));
    off += kWalRecordHeaderBytes + len;
    out->valid_bytes = off;
  }
  if (!out->torn && off < got) {
    stop("trailing bytes shorter than a record header");
  }
  return Status::success();
}

Status truncate_wal_segment(const std::string& path, std::uint64_t valid_bytes) {
  int r;
  do {
    r = ::truncate(path.c_str(), static_cast<off_t>(valid_bytes));
  } while (r != 0 && errno == EINTR);
  if (r != 0) return errno_status("wal truncate");
  return Status::success();
}

}  // namespace parsh::server
