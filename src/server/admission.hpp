// Admission control: the bounded queue between connection readers and
// query workers.
//
// Three jobs:
//   1. Coalesce arrivals into batches sized so one dispatch drains in
//      about `batch_budget_ms`, using a warm-start EWMA of ms/query
//      (seeded from the measured warm ms/query of
//      results/BENCH_thm12_approx_sssp.json via
//      AdmissionParams::warm_ms_per_query_hint).
//   2. Shed load instead of queueing it: a request is rejected with
//      RESOURCE_EXHAUSTED (plus a retry-after hint sized to the backlog)
//      when the queue is at depth capacity, or when the estimated drain
//      time of everything ahead of it already exceeds the request's own
//      deadline budget — admitting it would only manufacture a guaranteed
//      DEADLINE_EXCEEDED later, at full cost.
//   3. Pick the degradation tier: past `degrade_at_fraction` of queue
//      capacity, dispatched batches skip fine distance scales
//      (`degrade_skip_scales`), trading short-range precision for drain
//      rate before shedding starts.
//
// The kAdmission fault site injects phantom queue depth (kQueueSpike)
// into the shed estimate, which is how tests drive the shed path
// deterministically without racing real load.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <vector>

#include "server/fault_injector.hpp"
#include "server/metrics.hpp"
#include "server/protocol.hpp"
#include "util/deadline.hpp"

namespace parsh::server {

struct AdmissionParams {
  /// Hard cap on queued requests; arrivals beyond it are shed outright.
  std::size_t max_queue_depth = 256;
  /// Deadline applied when a request carries deadline_ms == 0.
  double default_deadline_ms = 50.0;
  /// EWMA seed for ms per query. Set from the warm ms/query of the
  /// approx-SSSP benchmark so the very first shed decisions are sane.
  double warm_ms_per_query_hint = 0.5;
  /// Query workers draining the queue (divides the drain estimate).
  std::size_t workers = 1;
  /// Target wall time one dispatched batch should take.
  double batch_budget_ms = 5.0;
  /// Cap on queries coalesced into one dispatch.
  std::size_t max_batch = 64;
  /// Queue fullness (fraction of max_queue_depth) beyond which dispatches
  /// degrade. >= 1.0 disables degradation.
  double degrade_at_fraction = 0.5;
  /// Distance scales to skip when degraded.
  std::size_t degrade_skip_scales = 1;
};

/// A request admitted but not yet executed.
struct PendingRequest {
  std::uint64_t conn_id = 0;
  QueryRequest req;
  Deadline deadline;
};

class AdmissionQueue {
 public:
  AdmissionQueue(AdmissionParams params, ServerMetrics* metrics,
                 FaultInjector* injector);

  /// Admit or shed. On shed returns kResourceExhausted and fills
  /// *retry_after_ms with a backlog-sized backoff hint.
  [[nodiscard]] Status offer(PendingRequest&& r, std::uint32_t* retry_after_ms);

  /// Block until work or stop(). Pops a coalesced batch (up to the EWMA
  /// batch target) and the degradation tier chosen for it. Returns false
  /// only when stopped and drained.
  [[nodiscard]] bool take_batch(std::vector<PendingRequest>* out,
                                std::size_t* skip_scales);

  /// Report a finished dispatch: retires its in-flight queries and folds
  /// the measured per-query cost into the EWMA.
  void finish_batch(std::size_t queries, double elapsed_ms);

  /// Wake all waiters; take_batch drains what is queued, then returns false.
  void stop();

  [[nodiscard]] double ewma_ms_per_query() const;
  [[nodiscard]] std::size_t depth() const;
  [[nodiscard]] const AdmissionParams& params() const { return params_; }

 private:
  [[nodiscard]] std::size_t batch_target_locked() const;

  AdmissionParams params_;
  ServerMetrics* metrics_;
  FaultInjector* injector_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::vector<PendingRequest> queue_;  // FIFO; pop from front via head_
  std::size_t head_ = 0;
  std::size_t queued_queries_ = 0;    // query pairs sitting in queue_
  std::size_t in_flight_queries_ = 0; // popped but not finish_batch()ed
  double ewma_ms_ = 0;
  bool stopped_ = false;
};

}  // namespace parsh::server
