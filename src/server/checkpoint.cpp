#include "server/checkpoint.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <utility>

#include "graph/pcsr.hpp"

namespace parsh::server {

namespace {

constexpr char kManifestMagic[8] = {'p', 'a', 'r', 's', 'h', 'C', 'K', 'M'};
constexpr std::size_t kManifestEntryBytes = 16 + kUpdateResultBytes;
constexpr std::size_t kManifestFixedBytes = kManifestHeaderBytes + 24 + 8;

Status errno_status(const char* what) {
  return Status::fail(StatusCode::kUnavailable,
                      std::string(what) + ": " + std::strerror(errno));
}

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

bool write_all(int fd, const std::uint8_t* p, std::size_t len) {
  std::size_t done = 0;
  while (done < len) {
    const ssize_t r = ::write(fd, p + done, len - done);
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (r == 0) return false;
    done += static_cast<std::size_t>(r);
  }
  return true;
}

/// Write `bytes` to `path` (truncating) and fsync before closing — the
/// "data is on the platter before the rename publishes it" half of the
/// atomic-checkpoint story.
Status write_file_synced(const std::string& path,
                         const std::vector<std::uint8_t>& bytes) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                        0644);
  if (fd < 0) return errno_status("checkpoint open");
  if (!write_all(fd, bytes.data(), bytes.size())) {
    const Status s = errno_status("checkpoint write");
    ::close(fd);
    return s;
  }
  int r;
  do {
    r = ::fsync(fd);
  } while (r != 0 && errno == EINTR);
  if (r != 0) {
    const Status s = errno_status("checkpoint fsync");
    ::close(fd);
    return s;
  }
  ::close(fd);
  return Status::success();
}

Status fsync_path(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return errno_status("fsync open");
  int r;
  do {
    r = ::fsync(fd);
  } while (r != 0 && errno == EINTR);
  const Status s = r != 0 ? errno_status("fsync") : Status::success();
  ::close(fd);
  return s;
}

void remove_quiet(const std::string& path) {
  std::error_code ec;
  std::filesystem::remove(path, ec);
}

bool parse_hex16(const std::string& name, std::size_t at, std::uint64_t* out) {
  std::uint64_t v = 0;
  for (std::size_t i = at; i < at + 16; ++i) {
    const char c = name[i];
    int d;
    if (c >= '0' && c <= '9') d = c - '0';
    else if (c >= 'a' && c <= 'f') d = c - 'a' + 10;
    else return false;
    v = (v << 4) | static_cast<std::uint64_t>(d);
  }
  *out = v;
  return true;
}

/// Manifest epochs present in `dir`, newest first.
std::vector<std::uint64_t> list_manifest_epochs(const std::string& dir) {
  std::vector<std::uint64_t> epochs;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    std::uint64_t e = 0;
    if (parse_checkpoint_manifest_name(entry.path().filename().string(), &e)) {
      epochs.push_back(e);
    }
  }
  std::sort(epochs.rbegin(), epochs.rend());
  return epochs;
}

/// Thrown inside the engine's pre-publish seam to abort an apply whose
/// WAL record could not be committed; carries the append's verdict.
struct WalAppendFailure {
  Status status;
};

}  // namespace

// ---- names ------------------------------------------------------------------

std::string checkpoint_graph_name(std::uint64_t epoch) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "ckpt-%016llx.pcsr",
                static_cast<unsigned long long>(epoch));
  return buf;
}

std::string checkpoint_manifest_name(std::uint64_t epoch) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "ckpt-%016llx.manifest",
                static_cast<unsigned long long>(epoch));
  return buf;
}

bool parse_checkpoint_manifest_name(const std::string& name, std::uint64_t* epoch) {
  // "ckpt-" + 16 hex + ".manifest" = 30 chars.
  if (name.size() != 30 || name.rfind("ckpt-", 0) != 0 ||
      name.compare(21, 9, ".manifest") != 0) {
    return false;
  }
  return parse_hex16(name, 5, epoch);
}

// ---- manifest codec ---------------------------------------------------------

void encode_manifest(std::vector<std::uint8_t>& out, const Manifest& m) {
  const std::size_t start = out.size();
  out.insert(out.end(), kManifestMagic, kManifestMagic + 8);
  wire::put_u32(out, kManifestVersion);
  wire::put_u32(out, 0);  // reserved
  wire::put_u64(out, m.epoch);
  wire::put_u64(out, m.wal_first_epoch);
  wire::put_u64(out, m.table.size());
  for (const auto& [client, entry] : m.table) {
    wire::put_u64(out, client);
    wire::put_u64(out, entry.sequence);
    encode_update_result(out, entry.result);
  }
  wire::put_u64(out, wire::fnv1a_bytes(out.data() + start, out.size() - start));
}

Status decode_manifest(const std::uint8_t* data, std::size_t len, Manifest* out) {
  if (len < kManifestFixedBytes) {
    return Status::fail(StatusCode::kInvalidArgument, "manifest: short");
  }
  if (std::memcmp(data, kManifestMagic, 8) != 0) {
    return Status::fail(StatusCode::kInvalidArgument, "manifest: bad magic");
  }
  if (wire::get_u32(data + 8) != kManifestVersion) {
    return Status::fail(StatusCode::kInvalidArgument, "manifest: unknown version");
  }
  // Checksum before structure: a flipped bit anywhere (including in the
  // counts the structural checks below would trust) must be caught here.
  const std::uint64_t want = wire::get_u64(data + len - 8);
  if (wire::fnv1a_bytes(data, len - 8) != want) {
    return Status::fail(StatusCode::kInvalidArgument, "manifest: checksum mismatch");
  }
  out->epoch = wire::get_u64(data + 16);
  out->wal_first_epoch = wire::get_u64(data + 24);
  const std::uint64_t n = wire::get_u64(data + 32);
  if (len != kManifestFixedBytes + n * kManifestEntryBytes) {
    return Status::fail(StatusCode::kInvalidArgument, "manifest: length/count mismatch");
  }
  out->table.clear();
  const std::uint8_t* p = data + 40;
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::uint64_t client = wire::get_u64(p);
    ClientEntry entry;
    entry.sequence = wire::get_u64(p + 8);
    Status s = decode_update_result(p + 16, kUpdateResultBytes, &entry.result);
    if (!s.ok()) return s;
    out->table.emplace(client, std::move(entry));
    p += kManifestEntryBytes;
  }
  return Status::success();
}

Status read_manifest_file(const std::string& path, Manifest* out) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return errno_status("manifest open");
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    const Status s = errno_status("manifest fstat");
    ::close(fd);
    return s;
  }
  std::vector<std::uint8_t> buf(static_cast<std::size_t>(st.st_size));
  std::size_t got = 0;
  while (got < buf.size()) {
    const ssize_t r = ::read(fd, buf.data() + got, buf.size() - got);
    if (r < 0) {
      if (errno == EINTR) continue;
      const Status s = errno_status("manifest read");
      ::close(fd);
      return s;
    }
    if (r == 0) break;
    got += static_cast<std::size_t>(r);
  }
  ::close(fd);
  if (got != buf.size()) {
    return Status::fail(StatusCode::kInvalidArgument, "manifest: short read");
  }
  return decode_manifest(buf.data(), buf.size(), out);
}

// ---- checkpoint writer ------------------------------------------------------

Status write_checkpoint(const std::string& dir, const Graph& g, const Manifest& m,
                        FaultInjector* injector, CheckpointCrashStage crash_after) {
  const std::string graph_final = dir + "/" + checkpoint_graph_name(m.epoch);
  const std::string graph_tmp = graph_final + ".tmp";
  const std::string man_final = dir + "/" + checkpoint_manifest_name(m.epoch);
  const std::string man_tmp = man_final + ".tmp";

  // 1. Graph bytes to a temp name, fsynced.
  if (injector &&
      injector->next(FaultSite::kCheckpointWrite).kind == FaultAction::Kind::kFailOp) {
    return Status::fail(StatusCode::kUnavailable,
                        "injected checkpoint write failure (graph)");
  }
  try {
    write_pcsr_file(graph_tmp, g);
  } catch (const std::exception& e) {
    remove_quiet(graph_tmp);
    return Status::fail(StatusCode::kInternal,
                        std::string("checkpoint graph write: ") + e.what());
  }
  if (Status s = fsync_path(graph_tmp); !s.ok()) {
    remove_quiet(graph_tmp);
    return s;
  }
  if (crash_after == CheckpointCrashStage::kAfterGraphTemp) {
    return Status::fail(StatusCode::kUnavailable,
                        "checkpoint crash seam: after graph temp");
  }

  // 2. Publish the graph. Without its manifest it is invisible garbage,
  // so a crash after this rename changes nothing for recovery.
  if (injector &&
      injector->next(FaultSite::kCheckpointRename).kind == FaultAction::Kind::kFailOp) {
    remove_quiet(graph_tmp);
    return Status::fail(StatusCode::kUnavailable,
                        "injected checkpoint rename failure (graph)");
  }
  if (::rename(graph_tmp.c_str(), graph_final.c_str()) != 0) {
    const Status s = errno_status("checkpoint graph rename");
    remove_quiet(graph_tmp);
    return s;
  }
  if (crash_after == CheckpointCrashStage::kAfterGraphRename) {
    return Status::fail(StatusCode::kUnavailable,
                        "checkpoint crash seam: after graph rename");
  }

  // 3. Manifest bytes to a temp name, fsynced.
  std::vector<std::uint8_t> bytes;
  encode_manifest(bytes, m);
  if (injector &&
      injector->next(FaultSite::kCheckpointWrite).kind == FaultAction::Kind::kFailOp) {
    remove_quiet(graph_final);
    return Status::fail(StatusCode::kUnavailable,
                        "injected checkpoint write failure (manifest)");
  }
  if (Status s = write_file_synced(man_tmp, bytes); !s.ok()) {
    remove_quiet(man_tmp);
    remove_quiet(graph_final);
    return s;
  }
  if (crash_after == CheckpointCrashStage::kAfterManifestTemp) {
    return Status::fail(StatusCode::kUnavailable,
                        "checkpoint crash seam: after manifest temp");
  }

  // 4. The commit point: renaming the manifest makes the pair real.
  if (injector &&
      injector->next(FaultSite::kCheckpointRename).kind == FaultAction::Kind::kFailOp) {
    remove_quiet(man_tmp);
    remove_quiet(graph_final);
    return Status::fail(StatusCode::kUnavailable,
                        "injected checkpoint rename failure (manifest)");
  }
  if (::rename(man_tmp.c_str(), man_final.c_str()) != 0) {
    const Status s = errno_status("checkpoint manifest rename");
    remove_quiet(man_tmp);
    remove_quiet(graph_final);
    return s;
  }

  // 5. Make the renames themselves durable. Best-effort: some filesystems
  // refuse directory fsync, and the checkpoint is already consistent.
  (void)fsync_path(dir);
  return Status::success();
}

// ---- loader -----------------------------------------------------------------

Status load_newest_checkpoint(const std::string& dir, LoadedCheckpoint* out) {
  *out = LoadedCheckpoint{};
  for (const std::uint64_t epoch : list_manifest_epochs(dir)) {
    Manifest m;
    const std::string man_path = dir + "/" + checkpoint_manifest_name(epoch);
    Status s = read_manifest_file(man_path, &m);
    if (!s.ok() || m.epoch != epoch) {
      ++out->rejected;
      continue;
    }
    const std::string graph_path = dir + "/" + checkpoint_graph_name(epoch);
    try {
      PcsrLoadOptions lo;
      lo.verify_checksums = true;
      Graph g = load_pcsr_file(graph_path, lo);
      out->found = true;
      out->manifest = std::move(m);
      out->graph = std::move(g);
      return Status::success();
    } catch (const std::exception&) {
      ++out->rejected;
    }
  }
  return Status::success();  // found=false: fresh directory
}

void collect_checkpoint_garbage(const std::string& dir, std::size_t keep) {
  const std::vector<std::uint64_t> epochs = list_manifest_epochs(dir);
  if (epochs.empty()) return;
  for (std::size_t i = std::max<std::size_t>(keep, 1); i < epochs.size(); ++i) {
    // Manifest first: once it is gone the graph is invisible, so a crash
    // mid-GC can only leave harmless orphans, never a manifest whose
    // graph was already deleted.
    remove_quiet(dir + "/" + checkpoint_manifest_name(epochs[i]));
    remove_quiet(dir + "/" + checkpoint_graph_name(epochs[i]));
  }
  // WAL horizon: replay after falling back to the OLDEST retained
  // checkpoint starts at its epoch + 1, so a segment is dead only when
  // the NEXT segment already covers that epoch. The newest segment is the
  // writer's append target and always survives.
  const std::size_t retained = std::min(std::max<std::size_t>(keep, 1), epochs.size());
  const std::uint64_t oldest = epochs[retained - 1];
  const std::vector<std::string> segments = list_wal_segments(dir);
  for (std::size_t i = 0; i + 1 < segments.size(); ++i) {
    std::uint64_t next_first = 0;
    const std::string next_name =
        std::filesystem::path(segments[i + 1]).filename().string();
    if (!parse_wal_segment_name(next_name, &next_first)) continue;
    if (next_first <= oldest + 1) remove_quiet(segments[i]);
  }
}

// ---- coordinator ------------------------------------------------------------

Status Durability::open(Graph base, DynamicApproxShortestPaths::Params params,
                        DurabilityOptions opt, std::unique_ptr<Durability>* out) {
  const auto t0 = std::chrono::steady_clock::now();
  std::error_code ec;
  std::filesystem::create_directories(opt.dir, ec);
  if (ec) {
    return Status::fail(StatusCode::kUnavailable,
                        "durability dir: " + ec.message());
  }

  std::unique_ptr<Durability> d(new Durability());
  d->opt_ = opt;

  // 1. Newest valid checkpoint, falling back past corrupt ones.
  LoadedCheckpoint ckpt;
  if (Status s = load_newest_checkpoint(opt.dir, &ckpt); !s.ok()) return s;
  std::uint64_t epoch = 0;
  if (ckpt.found) {
    epoch = ckpt.manifest.epoch;
    d->table_ = std::move(ckpt.manifest.table);
    d->report_.checkpoint_loaded = true;
    d->report_.checkpoint_epoch = epoch;
    d->engine_ = std::make_unique<DynamicApproxShortestPaths>(
        std::move(ckpt.graph), params, epoch);
  } else {
    d->engine_ = std::make_unique<DynamicApproxShortestPaths>(std::move(base),
                                                              params, 0);
  }
  d->report_.rejected_checkpoints = ckpt.rejected;

  // 2. Replay the WAL tail. Records at or below the checkpoint epoch are
  // already folded in; each later record must continue the epoch sequence
  // exactly (scan_wal_segment enforces continuity within a segment, this
  // loop enforces it across the checkpoint boundary and segment joins).
  const std::vector<std::string> segments = list_wal_segments(opt.dir);
  std::uint64_t append_first = epoch + 1;
  bool have_append_target = false;
  std::size_t dead_from = segments.size();
  for (std::size_t i = 0; i < segments.size(); ++i) {
    WalScan scan;
    Status s = scan_wal_segment(segments[i], &scan);
    if (!s.ok()) {
      // Header-corrupt segment: nothing in it (or after it) is reachable.
      dead_from = i;
      break;
    }
    bool gap = false;
    for (const WalRecord& rec : scan.records) {
      if (rec.epoch <= epoch) {
        ++d->report_.skipped;
        continue;
      }
      if (rec.epoch != d->engine_->epoch() + 1) {
        gap = true;
        ++d->report_.unreachable;
        continue;
      }
      try {
        const DynamicApproxShortestPaths::ApplyResult r =
            d->engine_->apply(rec.delta);
        if (r.epoch != rec.epoch) {
          return Status::fail(StatusCode::kInternal,
                              "wal replay: epoch drift (engine " +
                                  std::to_string(r.epoch) + ", record " +
                                  std::to_string(rec.epoch) + ")");
        }
      } catch (const std::exception& e) {
        // A checksummed record the recovered graph rejects means the base
        // state does not match the log (wrong dir, wrong base graph).
        return Status::fail(StatusCode::kInternal,
                            std::string("wal replay: ") + e.what());
      }
      if (rec.client_id != 0) {
        ClientEntry entry;
        entry.sequence = rec.sequence;
        entry.result = rec.result;
        entry.result.id = 0;
        d->table_[rec.client_id] = std::move(entry);
      }
      ++d->report_.replayed;
    }
    if (gap) {
      dead_from = i;
      break;
    }
    if (scan.torn) {
      // Torn tail: cut it. If this is not the last segment the later ones
      // hold epochs we can no longer bridge to — they are dead too.
      if (Status ts = truncate_wal_segment(segments[i], scan.valid_bytes);
          !ts.ok()) {
        return ts;
      }
      d->report_.torn_bytes += scan.file_bytes - scan.valid_bytes;
      append_first = scan.first_epoch;
      have_append_target = true;
      dead_from = i + 1;
      break;
    }
    append_first = scan.first_epoch;
    have_append_target = true;
  }
  // Segments past the damage point are unreachable forever (the epoch
  // chain is broken below them); appending must not interleave new
  // epochs with stranded ones, so they go.
  for (std::size_t i = dead_from; i < segments.size(); ++i) {
    if (have_append_target &&
        segments[i] == opt.dir + "/" + wal_segment_name(append_first)) {
      continue;  // the healed append target survives
    }
    remove_quiet(segments[i]);
  }
  if (!have_append_target) append_first = d->engine_->epoch() + 1;

  // 3. Reopen the log for appending where replay left off.
  if (Status s = d->wal_.open(opt.dir, append_first, opt.wal); !s.ok()) {
    return s;
  }

  d->report_.recovery_ms = ms_since(t0);
  *out = std::move(d);
  return Status::success();
}

void Durability::handle_update(const UpdateRequest& req, UpdateResponse* resp,
                               FaultInjector* injector, ServerMetrics* metrics) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t caller_id = resp->id;
  *resp = UpdateResponse{};
  resp->id = caller_id;

  // Exactly-once gate. Only the latest sequence per client is retained:
  // the client retries at most its newest batch, so an older sequence is
  // a protocol violation, not a late retry.
  if (req.client_id != 0) {
    const auto it = table_.find(req.client_id);
    if (it != table_.end()) {
      if (req.sequence == it->second.sequence) {
        *resp = it->second.result;
        resp->id = caller_id;
        resp->flags |= kUpdateFlagDuplicate;
        if (metrics) metrics->bump(metrics->updates_deduped);
        return;
      }
      if (req.sequence < it->second.sequence) {
        resp->status = StatusCode::kInvalidArgument;
        resp->epoch = engine_->epoch();
        return;
      }
    }
  }

  GraphDelta delta;
  delta.insert = req.insert;
  delta.remove = req.remove;
  try {
    engine_->apply(delta, [&](const DynamicApproxShortestPaths::ApplyResult& r) {
      // The snapshot is built but unpublished: fill the response, log it,
      // and only if the record commits may the epoch become visible.
      resp->status = StatusCode::kOk;
      resp->flags = r.hopset.full_rebuild ? kUpdateFlagFullRebuild : 0;
      resp->epoch = r.epoch;
      resp->rebuild_ms = r.rebuild_ms;
      resp->dirty_scales = static_cast<std::uint32_t>(r.hopset.dirty_scales);
      resp->total_scales = static_cast<std::uint32_t>(r.hopset.total_scales);
      resp->dirty_clusters = r.hopset.dirty_clusters;
      resp->total_clusters = r.hopset.total_clusters;
      resp->inserted = r.inserted;
      resp->removed = r.removed;
      resp->reweighted = r.reweighted;
      resp->noops = r.noops;

      WalRecord rec;
      rec.epoch = r.epoch;
      rec.client_id = req.client_id;
      rec.sequence = req.sequence;
      rec.result = *resp;
      rec.result.id = 0;
      rec.delta = delta;
      Status ws = wal_.append(rec, injector, metrics);
      if (!ws.ok()) throw WalAppendFailure{std::move(ws)};
    });
  } catch (const WalAppendFailure& f) {
    *resp = UpdateResponse{};
    resp->id = caller_id;
    resp->status = StatusCode::kUnavailable;  // retryable: nothing applied
    resp->epoch = engine_->epoch();
    if (metrics) metrics->bump(metrics->wal_failures);
    (void)f;
    return;
  } catch (const std::invalid_argument&) {
    *resp = UpdateResponse{};
    resp->id = caller_id;
    resp->status = StatusCode::kInvalidArgument;
    resp->epoch = engine_->epoch();
    return;
  } catch (const std::exception&) {
    *resp = UpdateResponse{};
    resp->id = caller_id;
    resp->status = StatusCode::kInternal;
    resp->epoch = engine_->epoch();
    return;
  }

  if (req.client_id != 0) {
    ClientEntry entry;
    entry.sequence = req.sequence;
    entry.result = *resp;
    entry.result.id = 0;
    entry.result.flags &= ~kUpdateFlagDuplicate;
    table_[req.client_id] = std::move(entry);
  }

  ++since_checkpoint_;
  if (opt_.checkpoint_every != 0 && since_checkpoint_ >= opt_.checkpoint_every) {
    // Threshold checkpoint; a failure here does not fail the update — the
    // record is durable in the WAL, the checkpoint just stays older.
    (void)checkpoint_locked_(injector, metrics);
  }
}

Status Durability::checkpoint_now(FaultInjector* injector, ServerMetrics* metrics) {
  std::lock_guard<std::mutex> lock(mu_);
  return checkpoint_locked_(injector, metrics);
}

Status Durability::checkpoint_locked_(FaultInjector* injector,
                                      ServerMetrics* metrics) {
  // Under mu_ no update is mid-apply, so the published snapshot IS the
  // durable high-water mark.
  const auto snap = engine_->snapshot();
  if (Status s = wal_.sync(metrics); !s.ok()) return s;

  Manifest m;
  m.epoch = snap->epoch;
  m.wal_first_epoch = snap->epoch + 1;
  m.table = table_;

  const CheckpointCrashStage stage = crash_stage_;
  crash_stage_ = CheckpointCrashStage::kNone;  // one-shot test seam
  if (Status s = write_checkpoint(opt_.dir, snap->graph, m, injector, stage);
      !s.ok()) {
    return s;
  }

  ++checkpoints_;
  since_checkpoint_ = 0;
  if (metrics) metrics->bump(metrics->checkpoints_written);

  // New segment so GC can drop whole files; then drop what the retained
  // checkpoints no longer need.
  if (Status s = wal_.rotate(snap->epoch + 1, metrics); !s.ok()) return s;
  collect_checkpoint_garbage(opt_.dir, opt_.keep_checkpoints);
  return Status::success();
}

ClientTable Durability::client_table() const {
  std::lock_guard<std::mutex> lock(mu_);
  return table_;
}

std::uint64_t Durability::checkpoints_written() const {
  std::lock_guard<std::mutex> lock(mu_);
  return checkpoints_;
}

void Durability::set_checkpoint_crash_stage(CheckpointCrashStage s) {
  std::lock_guard<std::mutex> lock(mu_);
  crash_stage_ = s;
}

}  // namespace parsh::server
