#include "server/protocol.hpp"

#include <cstring>

namespace parsh::server {

namespace {

// Little-endian fixed-width append helpers. memcpy keeps them UB-free on
// any alignment; the byte order below is the wire format.
void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xff));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}
void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}
void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}
void put_f64(std::vector<std::uint8_t>& out, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(out, bits);
}

/// Bounds-checked little-endian cursor over a payload.
class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t len) : p_(data), len_(len) {}

  bool u32(std::uint32_t* v) {
    if (len_ - off_ < 4) return false;
    std::uint32_t r = 0;
    for (int i = 0; i < 4; ++i) r |= static_cast<std::uint32_t>(p_[off_ + i]) << (8 * i);
    off_ += 4;
    *v = r;
    return true;
  }
  bool u64(std::uint64_t* v) {
    if (len_ - off_ < 8) return false;
    std::uint64_t r = 0;
    for (int i = 0; i < 8; ++i) r |= static_cast<std::uint64_t>(p_[off_ + i]) << (8 * i);
    off_ += 8;
    *v = r;
    return true;
  }
  bool f64(double* v) {
    std::uint64_t bits;
    if (!u64(&bits)) return false;
    std::memcpy(v, &bits, sizeof(*v));
    return true;
  }
  bool bytes(std::string* out, std::size_t n) {
    if (len_ - off_ < n) return false;
    out->assign(reinterpret_cast<const char*>(p_ + off_), n);
    off_ += n;
    return true;
  }
  [[nodiscard]] std::size_t remaining() const { return len_ - off_; }
  [[nodiscard]] bool done() const { return off_ == len_; }

 private:
  const std::uint8_t* p_;
  std::size_t len_;
  std::size_t off_ = 0;
};

Status malformed(const char* what) {
  return Status::fail(StatusCode::kInvalidArgument, what);
}

}  // namespace

void append_frame(std::vector<std::uint8_t>& out, FrameType type,
                  const std::uint8_t* payload, std::size_t len) {
  put_u16(out, kMagic);
  out.push_back(kProtocolVersion);
  out.push_back(static_cast<std::uint8_t>(type));
  put_u32(out, static_cast<std::uint32_t>(len));
  out.insert(out.end(), payload, payload + len);
}

Status parse_frame_header(const std::uint8_t header[kFrameHeaderBytes],
                          FrameType* type, std::uint32_t* payload_len) {
  const std::uint16_t magic =
      static_cast<std::uint16_t>(header[0]) | static_cast<std::uint16_t>(header[1]) << 8;
  if (magic != kMagic) return malformed("frame: bad magic");
  // v1/v2 query, ping and stats frames are still honored (their payloads
  // never changed). Update frames must arrive at v3: v3 redefined the
  // update payload to carry the (client_id, sequence) exactly-once
  // identity, so an older update frame cannot be decoded — and accepting
  // one without an identity would silently forfeit dedup under retries.
  if (header[2] < 1 || header[2] > kProtocolVersion) {
    return malformed("frame: unsupported version");
  }
  if (!frame_type_known(header[3])) return malformed("frame: unknown type");
  if (header[2] < 3 && header[3] > 7) {
    return malformed("frame: update frames require protocol v3");
  }
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i) len |= static_cast<std::uint32_t>(header[4 + i]) << (8 * i);
  if (len > kMaxPayloadBytes) return malformed("frame: payload too large");
  *type = static_cast<FrameType>(header[3]);
  *payload_len = len;
  return Status::success();
}

// ---- query request ----------------------------------------------------------
// payload: id u64, deadline_ms u32, flags u32, count u32, count * {s u32, t u32}

void encode_query_request(std::vector<std::uint8_t>& out, const QueryRequest& req) {
  std::vector<std::uint8_t> payload;
  payload.reserve(20 + req.pairs.size() * 8);
  put_u64(payload, req.id);
  put_u32(payload, req.deadline_ms);
  put_u32(payload, req.flags);
  put_u32(payload, static_cast<std::uint32_t>(req.pairs.size()));
  for (const auto& [s, t] : req.pairs) {
    put_u32(payload, s);
    put_u32(payload, t);
  }
  append_frame(out, FrameType::kQueryRequest, payload.data(), payload.size());
}

Status decode_query_request(const std::vector<std::uint8_t>& payload,
                            QueryRequest* out) {
  Reader r(payload.data(), payload.size());
  std::uint32_t count = 0;
  if (!r.u64(&out->id) || !r.u32(&out->deadline_ms) || !r.u32(&out->flags) ||
      !r.u32(&count)) {
    return malformed("query request: truncated header");
  }
  if (out->flags != 0) return malformed("query request: unknown flags");
  if (out->deadline_ms > kMaxDeadlineMs) {
    return malformed("query request: deadline above cap");
  }
  if (count > kMaxBatchPairs) return malformed("query request: batch too large");
  if (r.remaining() != static_cast<std::size_t>(count) * 8) {
    return malformed("query request: count disagrees with payload length");
  }
  out->pairs.clear();
  out->pairs.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    std::uint32_t s = 0, t = 0;
    if (!r.u32(&s) || !r.u32(&t)) return malformed("query request: truncated pair");
    out->pairs.emplace_back(static_cast<vid>(s), static_cast<vid>(t));
  }
  return Status::success();
}

// ---- query response ---------------------------------------------------------
// payload: id u64, status u32, retry_after_ms u32, flags u32, epoch u64,
//          count u32, count * {status u32, estimate f64, scale u32}

void encode_query_response(std::vector<std::uint8_t>& out, const QueryResponse& resp) {
  std::vector<std::uint8_t> payload;
  payload.reserve(32 + resp.answers.size() * 16);
  put_u64(payload, resp.id);
  put_u32(payload, static_cast<std::uint32_t>(resp.status));
  put_u32(payload, resp.retry_after_ms);
  put_u32(payload, resp.flags);
  put_u64(payload, resp.epoch);
  put_u32(payload, static_cast<std::uint32_t>(resp.answers.size()));
  for (const QueryAnswer& a : resp.answers) {
    put_u32(payload, static_cast<std::uint32_t>(a.status));
    put_f64(payload, a.estimate);
    put_u32(payload, a.scale);
  }
  append_frame(out, FrameType::kQueryResponse, payload.data(), payload.size());
}

Status decode_query_response(const std::vector<std::uint8_t>& payload,
                             QueryResponse* out) {
  Reader r(payload.data(), payload.size());
  std::uint32_t status = 0, count = 0;
  if (!r.u64(&out->id) || !r.u32(&status) || !r.u32(&out->retry_after_ms) ||
      !r.u32(&out->flags) || !r.u64(&out->epoch) || !r.u32(&count)) {
    return malformed("query response: truncated header");
  }
  if (status > static_cast<std::uint32_t>(StatusCode::kInternal)) {
    return malformed("query response: unknown status");
  }
  out->status = static_cast<StatusCode>(status);
  if (count > kMaxBatchPairs) return malformed("query response: batch too large");
  if (r.remaining() != static_cast<std::size_t>(count) * 16) {
    return malformed("query response: count disagrees with payload length");
  }
  out->answers.clear();
  out->answers.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    QueryAnswer a;
    std::uint32_t st = 0;
    if (!r.u32(&st) || !r.f64(&a.estimate) || !r.u32(&a.scale)) {
      return malformed("query response: truncated answer");
    }
    if (st > static_cast<std::uint32_t>(StatusCode::kInternal)) {
      return malformed("query response: unknown answer status");
    }
    a.status = static_cast<StatusCode>(st);
    out->answers.push_back(a);
  }
  return Status::success();
}

// ---- update request ---------------------------------------------------------
// payload (v3): id u64, flags u32, client_id u64, sequence u64,
//          n_insert u32, n_remove u32,
//          n_insert * {u u32, v u32, w f64}, n_remove * {u u32, v u32}

void encode_update_request(std::vector<std::uint8_t>& out, const UpdateRequest& req) {
  std::vector<std::uint8_t> payload;
  payload.reserve(36 + req.insert.size() * 16 + req.remove.size() * 8);
  put_u64(payload, req.id);
  put_u32(payload, req.flags);
  put_u64(payload, req.client_id);
  put_u64(payload, req.sequence);
  put_u32(payload, static_cast<std::uint32_t>(req.insert.size()));
  put_u32(payload, static_cast<std::uint32_t>(req.remove.size()));
  for (const Edge& e : req.insert) {
    put_u32(payload, e.u);
    put_u32(payload, e.v);
    put_f64(payload, e.w);
  }
  for (const Edge& e : req.remove) {
    put_u32(payload, e.u);
    put_u32(payload, e.v);
  }
  append_frame(out, FrameType::kUpdateRequest, payload.data(), payload.size());
}

Status decode_update_request(const std::vector<std::uint8_t>& payload,
                             UpdateRequest* out) {
  Reader r(payload.data(), payload.size());
  std::uint32_t n_ins = 0, n_rem = 0;
  if (!r.u64(&out->id) || !r.u32(&out->flags) || !r.u64(&out->client_id) ||
      !r.u64(&out->sequence) || !r.u32(&n_ins) || !r.u32(&n_rem)) {
    return malformed("update request: truncated header");
  }
  if (out->flags != 0) return malformed("update request: unknown flags");
  if (out->client_id != 0 && out->sequence == 0) {
    return malformed("update request: sequence must start at 1");
  }
  if (static_cast<std::size_t>(n_ins) + n_rem > kMaxUpdateEdges) {
    return malformed("update request: batch too large");
  }
  if (r.remaining() !=
      static_cast<std::size_t>(n_ins) * 16 + static_cast<std::size_t>(n_rem) * 8) {
    return malformed("update request: counts disagree with payload length");
  }
  out->insert.clear();
  out->insert.reserve(n_ins);
  for (std::uint32_t i = 0; i < n_ins; ++i) {
    std::uint32_t u = 0, v = 0;
    double w = 0;
    if (!r.u32(&u) || !r.u32(&v) || !r.f64(&w)) {
      return malformed("update request: truncated insert");
    }
    // Weight sanity belongs to the frame, not admission: a non-positive
    // or non-finite weight can never be valid for any graph.
    if (!(w > 0) || w != w || w > 1e300) {
      return malformed("update request: bad insert weight");
    }
    out->insert.push_back({static_cast<vid>(u), static_cast<vid>(v), w});
  }
  out->remove.clear();
  out->remove.reserve(n_rem);
  for (std::uint32_t i = 0; i < n_rem; ++i) {
    std::uint32_t u = 0, v = 0;
    if (!r.u32(&u) || !r.u32(&v)) return malformed("update request: truncated remove");
    out->remove.push_back({static_cast<vid>(u), static_cast<vid>(v), 1});
  }
  return Status::success();
}

// ---- update response --------------------------------------------------------
// payload: id u64, status u32, flags u32, epoch u64, rebuild_ms f64,
//          dirty_scales u32, total_scales u32, dirty_clusters u64,
//          total_clusters u64, inserted u64, removed u64, reweighted u64,
//          noops u64

void encode_update_response(std::vector<std::uint8_t>& out, const UpdateResponse& resp) {
  std::vector<std::uint8_t> payload;
  payload.reserve(80);
  put_u64(payload, resp.id);
  put_u32(payload, static_cast<std::uint32_t>(resp.status));
  put_u32(payload, resp.flags);
  put_u64(payload, resp.epoch);
  put_f64(payload, resp.rebuild_ms);
  put_u32(payload, resp.dirty_scales);
  put_u32(payload, resp.total_scales);
  put_u64(payload, resp.dirty_clusters);
  put_u64(payload, resp.total_clusters);
  put_u64(payload, resp.inserted);
  put_u64(payload, resp.removed);
  put_u64(payload, resp.reweighted);
  put_u64(payload, resp.noops);
  append_frame(out, FrameType::kUpdateResponse, payload.data(), payload.size());
}

Status decode_update_response(const std::vector<std::uint8_t>& payload,
                              UpdateResponse* out) {
  Reader r(payload.data(), payload.size());
  std::uint32_t status = 0;
  if (!r.u64(&out->id) || !r.u32(&status) || !r.u32(&out->flags) ||
      !r.u64(&out->epoch) || !r.f64(&out->rebuild_ms) ||
      !r.u32(&out->dirty_scales) || !r.u32(&out->total_scales) ||
      !r.u64(&out->dirty_clusters) || !r.u64(&out->total_clusters) ||
      !r.u64(&out->inserted) || !r.u64(&out->removed) ||
      !r.u64(&out->reweighted) || !r.u64(&out->noops) || !r.done()) {
    return malformed("update response: bad payload");
  }
  if (status > static_cast<std::uint32_t>(StatusCode::kInternal)) {
    return malformed("update response: unknown status");
  }
  out->status = static_cast<StatusCode>(status);
  return Status::success();
}

// ---- ping / stats / error ---------------------------------------------------

void encode_ping(std::vector<std::uint8_t>& out, std::uint64_t nonce, bool pong) {
  std::vector<std::uint8_t> payload;
  put_u64(payload, nonce);
  append_frame(out, pong ? FrameType::kPong : FrameType::kPing, payload.data(),
               payload.size());
}

Status decode_ping(const std::vector<std::uint8_t>& payload, std::uint64_t* nonce) {
  Reader r(payload.data(), payload.size());
  if (!r.u64(nonce) || !r.done()) return malformed("ping: bad payload");
  return Status::success();
}

void encode_stats_request(std::vector<std::uint8_t>& out) {
  append_frame(out, FrameType::kStatsRequest, nullptr, 0);
}

void encode_stats_response(std::vector<std::uint8_t>& out, const StatsSnapshot& s) {
  std::vector<std::uint8_t> payload;
  const std::uint64_t fields[] = {
      s.frames_received,    s.invalid_frames,  s.requests_admitted,
      s.requests_shed,      s.queries_ok,      s.queries_deadline_exceeded,
      s.queries_out_of_range, s.queries_degraded, s.batches_served,
      s.connections_opened, s.connections_closed, s.faults_injected,
      s.pool_checkout_timeouts, s.updates_applied, s.updates_rejected,
      s.stale_batches,          s.updates_deduped, s.wal_records,
      s.wal_fsyncs,             s.checkpoints_written, s.wal_failures,
      s.recovered_updates,
  };
  put_u32(payload, static_cast<std::uint32_t>(std::size(fields)));
  for (std::uint64_t f : fields) put_u64(payload, f);
  append_frame(out, FrameType::kStatsResponse, payload.data(), payload.size());
}

Status decode_stats_response(const std::vector<std::uint8_t>& payload,
                             StatsSnapshot* out) {
  Reader r(payload.data(), payload.size());
  std::uint32_t count = 0;
  if (!r.u32(&count)) return malformed("stats: truncated");
  // Appended fields from a newer server decode as "what we know".
  std::uint64_t* fields[] = {
      &out->frames_received,    &out->invalid_frames,  &out->requests_admitted,
      &out->requests_shed,      &out->queries_ok,      &out->queries_deadline_exceeded,
      &out->queries_out_of_range, &out->queries_degraded, &out->batches_served,
      &out->connections_opened, &out->connections_closed, &out->faults_injected,
      &out->pool_checkout_timeouts, &out->updates_applied, &out->updates_rejected,
      &out->stale_batches,      &out->updates_deduped, &out->wal_records,
      &out->wal_fsyncs,         &out->checkpoints_written, &out->wal_failures,
      &out->recovered_updates,
  };
  if (r.remaining() != static_cast<std::size_t>(count) * 8) {
    return malformed("stats: count disagrees with payload length");
  }
  for (std::size_t i = 0; i < count; ++i) {
    std::uint64_t v = 0;
    if (!r.u64(&v)) return malformed("stats: truncated field");
    if (i < std::size(fields)) *fields[i] = v;
  }
  return Status::success();
}

void encode_error(std::vector<std::uint8_t>& out, const Status& status) {
  std::vector<std::uint8_t> payload;
  put_u32(payload, static_cast<std::uint32_t>(status.code));
  // Detail messages are advisory; cap them so an error path can never
  // build an oversized frame.
  const std::size_t n = status.message.size() < 256 ? status.message.size() : 256;
  payload.insert(payload.end(), status.message.begin(), status.message.begin() + n);
  append_frame(out, FrameType::kError, payload.data(), payload.size());
}

Status decode_error(const std::vector<std::uint8_t>& payload, Status* out) {
  Reader r(payload.data(), payload.size());
  std::uint32_t code = 0;
  if (!r.u32(&code)) return malformed("error frame: truncated");
  if (code > static_cast<std::uint32_t>(StatusCode::kInternal)) {
    return malformed("error frame: unknown status");
  }
  out->code = static_cast<StatusCode>(code);
  return r.bytes(&out->message, r.remaining()) ? Status::success()
                                               : malformed("error frame: truncated");
}

}  // namespace parsh::server
