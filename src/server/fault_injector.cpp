#include "server/fault_injector.hpp"

namespace parsh::server {

namespace {

// Draw indices: each next() call at a site consumes a fixed window of the
// site's counter-based stream (kDrawsPerCall values), so the j-th call
// always reads the same stream positions no matter what other sites did.
constexpr std::uint64_t kDrawsPerCall = 4;

}  // namespace

FaultInjector::FaultInjector(std::uint64_t seed, FaultPlan plan) : plan_(plan) {
  Rng root(seed);
  sites_.reserve(kNumFaultSites);
  for (std::size_t s = 0; s < kNumFaultSites; ++s) {
    sites_.push_back(Site{root.split(s), 0, {}});
  }
}

FaultAction FaultInjector::next(FaultSite site) {
  std::lock_guard<std::mutex> lock(mu_);
  Site& st = sites_[static_cast<std::size_t>(site)];
  const std::uint64_t n = st.count++;
  const std::uint64_t base = n * kDrawsPerCall;
  const double u = st.rng.uniform(base);

  FaultAction act;
  // Fixed trial order per site against one uniform draw; value draws use
  // dedicated stream positions so adding a kind never shifts the others.
  double cum = 0;
  auto hit = [&](double p) {
    if (p <= 0) return false;
    cum += p;
    return u < cum;
  };
  switch (site) {
    case FaultSite::kWriteFrame:
      if (hit(plan_.tear_write)) {
        act.kind = FaultAction::Kind::kTearWrite;
        // Tear inside the header or just after: 1..11 bytes survive.
        act.amount = 1 + st.rng.uniform_int(base + 1, 11);
      } else if (hit(plan_.slow_write)) {
        act.kind = FaultAction::Kind::kSlowWrite;
        act.amount = 1 + st.rng.uniform_int(base + 1, 7);  // chunk bytes
        act.delay_us = static_cast<std::uint32_t>(
            st.rng.uniform_int(base + 2, plan_.max_delay_us + 1));
      } else if (hit(plan_.drop_connection)) {
        act.kind = FaultAction::Kind::kDropConnection;
      }
      break;
    case FaultSite::kReadFrame:
      if (hit(plan_.drop_connection)) act.kind = FaultAction::Kind::kDropConnection;
      break;
    case FaultSite::kWorkerLoop:
      if (hit(plan_.worker_stall)) {
        act.kind = FaultAction::Kind::kStall;
        act.delay_us = static_cast<std::uint32_t>(
            st.rng.uniform_int(base + 1, plan_.max_delay_us + 1));
      }
      break;
    case FaultSite::kAdmission:
      if (hit(plan_.queue_spike)) {
        act.kind = FaultAction::Kind::kQueueSpike;
        act.amount = 1 + st.rng.uniform_int(base + 1, plan_.max_spike);
      }
      break;
    case FaultSite::kSwap:
      if (hit(plan_.swap_stall)) {
        act.kind = FaultAction::Kind::kStall;
        act.delay_us = static_cast<std::uint32_t>(
            st.rng.uniform_int(base + 1, plan_.max_delay_us + 1));
      }
      break;
    case FaultSite::kWalAppend:
      if (hit(plan_.wal_append_tear)) {
        act.kind = FaultAction::Kind::kTearWrite;
        // Tear inside the record header or shortly after: the torn tail
        // the recovery scan must detect and truncate.
        act.amount = 1 + st.rng.uniform_int(base + 1, 23);
      }
      break;
    case FaultSite::kWalFsync:
      if (hit(plan_.wal_fsync_fail)) act.kind = FaultAction::Kind::kFailOp;
      break;
    case FaultSite::kCheckpointWrite:
      if (hit(plan_.checkpoint_write_fail)) act.kind = FaultAction::Kind::kFailOp;
      break;
    case FaultSite::kCheckpointRename:
      if (hit(plan_.checkpoint_rename_fail)) act.kind = FaultAction::Kind::kFailOp;
      break;
  }

  if (!act.none()) ++injected_;
  std::string entry = fault_site_name(site);
  entry += '/';
  entry += std::to_string(n);
  entry += ':';
  entry += fault_kind_name(act.kind);
  if (act.amount != 0) {
    entry += ':';
    entry += std::to_string(act.amount);
  }
  if (act.delay_us != 0) {
    entry += ':';
    entry += std::to_string(act.delay_us);
    entry += "us";
  }
  st.trace.push_back(std::move(entry));
  return act;
}

std::uint64_t FaultInjector::injected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return injected_;
}

std::vector<std::string> FaultInjector::trace(FaultSite site) const {
  std::lock_guard<std::mutex> lock(mu_);
  return sites_[static_cast<std::size_t>(site)].trace;
}

std::string FaultInjector::trace_string() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const Site& st : sites_) {
    for (const std::string& e : st.trace) {
      out += e;
      out += '\n';
    }
  }
  return out;
}

}  // namespace parsh::server
