// Write-ahead log for the durable serving layer.
//
// Every accepted UPDATE_REQUEST is serialized into an append-only segment
// file BEFORE its epoch is published (the engine's pre_publish seam), so
// an acknowledged update survives a crash. The format is built for the
// one failure mode an append-only log actually has — a torn tail:
//
//   segment  = header | record*
//   header   = magic "parshWAL" (8) | version u32 | first_epoch u64 |
//              reserved u32                                      (24 bytes)
//   record   = marker u32 "WALR" | payload_len u32 |
//              fnv1a64(payload) u64 | payload                    (16 + len)
//   payload  = type u8 (1 = update)
//            | epoch u64 | client_id u64 | sequence u64
//            | result block (the UpdateResponse minus its frame id)
//            | delta (write_delta_binary framing from graph/io)
//
// Recovery scans records in order and stops at the first invalid one
// (bad marker, impossible length, checksum mismatch, short payload): a
// record is replayed whole or not at all, never partially. Whatever
// follows the valid prefix is a torn tail from a mid-append crash; the
// recoverer ftruncates it away and the writer appends after it.
//
// All integers little-endian fixed-width, doubles IEEE-754 bit patterns —
// the same conventions as the wire protocol and the PCSR file format.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/delta.hpp"
#include "graph/digest.hpp"
#include "server/fault_injector.hpp"
#include "server/metrics.hpp"
#include "server/protocol.hpp"
#include "server/status.hpp"

namespace parsh::server {

// ---- little-endian byte helpers --------------------------------------------
// Shared by the WAL and checkpoint codecs (and wal_inspect). Kept header-
// inline: four-instruction functions, three translation units.
namespace wire {

inline void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

inline void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

inline void put_f64(std::vector<std::uint8_t>& out, double v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  __builtin_memcpy(&bits, &v, sizeof(bits));
  put_u64(out, bits);
}

inline std::uint32_t get_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

inline std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

inline double get_f64(const std::uint8_t* p) {
  const std::uint64_t bits = get_u64(p);
  double v;
  __builtin_memcpy(&v, &bits, sizeof(v));
  return v;
}

/// FNV-1a over a byte range, the integrity check on every WAL record and
/// checkpoint manifest (same constants as graph_digest).
inline std::uint64_t fnv1a_bytes(const std::uint8_t* p, std::size_t len) {
  std::uint64_t h = kFnv64Offset;
  for (std::size_t i = 0; i < len; ++i) {
    h = (h ^ p[i]) * kFnv64Prime;
  }
  return h;
}

}  // namespace wire

inline constexpr std::uint32_t kWalVersion = 1;
inline constexpr std::uint32_t kWalRecordMarker = 0x524c4157;  // "WALR"
inline constexpr std::size_t kWalSegmentHeaderBytes = 24;
inline constexpr std::size_t kWalRecordHeaderBytes = 16;
/// Hard cap on one record's payload: an update frame's edges plus fixed
/// fields can't legitimately exceed this, so larger lengths in a record
/// header mean corruption, not a big record.
inline constexpr std::size_t kWalMaxPayloadBytes = 2u << 20;

/// When appends reach the disk. Every policy still fsyncs at checkpoint
/// boundaries (GC must never outrun durability).
enum class FsyncPolicy : std::uint8_t {
  kEveryBatch = 0,  ///< fsync after every record — full durability
  kEveryN = 1,      ///< fsync every fsync_every_n records — bounded loss window
  kOff = 2,         ///< never fsync on append — kernel decides (tests, benches)
};

[[nodiscard]] constexpr const char* fsync_policy_name(FsyncPolicy p) {
  switch (p) {
    case FsyncPolicy::kEveryBatch: return "every-batch";
    case FsyncPolicy::kEveryN: return "every-n";
    case FsyncPolicy::kOff: return "off";
  }
  return "?";
}

struct WalOptions {
  FsyncPolicy fsync = FsyncPolicy::kEveryBatch;
  std::uint64_t fsync_every_n = 8;  ///< under kEveryN
};

/// One durably logged update: the exactly-once identity, the delta, and
/// the verdict the client was (or will be, on a duplicate retry) given.
/// `result.id` is not persisted — it is the frame id of whichever request
/// the response answers, patched per delivery.
struct WalRecord {
  std::uint64_t epoch = 0;      ///< epoch the update published as
  std::uint64_t client_id = 0;  ///< 0 = logged without dedup identity
  std::uint64_t sequence = 0;
  UpdateResponse result;
  GraphDelta delta;
};

// ---- record codec (exposed for wal_inspect and the tests) -------------------

/// Append `rec`'s payload bytes (no record header) to `out`.
void encode_wal_record(std::vector<std::uint8_t>& out, const WalRecord& rec);
/// Decode one record payload. kInvalidArgument on truncation/bad type.
[[nodiscard]] Status decode_wal_record(const std::uint8_t* data, std::size_t len,
                                       WalRecord* out);
/// The UpdateResponse block shared by WAL records and checkpoint
/// manifests (fixed 80 bytes; frame id excluded).
inline constexpr std::size_t kUpdateResultBytes = 80;
void encode_update_result(std::vector<std::uint8_t>& out, const UpdateResponse& r);
[[nodiscard]] Status decode_update_result(const std::uint8_t* data, std::size_t len,
                                          UpdateResponse* out);

/// Segment file name for a segment whose first record has `first_epoch`:
/// "wal-<first_epoch as %016x>.log" (lexicographic order == epoch order).
[[nodiscard]] std::string wal_segment_name(std::uint64_t first_epoch);
/// Parse the first-epoch out of a segment file name; false if the name is
/// not a WAL segment's.
[[nodiscard]] bool parse_wal_segment_name(const std::string& name,
                                          std::uint64_t* first_epoch);
/// Absolute paths of every WAL segment in `dir`, sorted by first epoch.
[[nodiscard]] std::vector<std::string> list_wal_segments(const std::string& dir);

// ---- writer -----------------------------------------------------------------

/// Appends records to one segment at a time. Not thread-safe — the
/// durability layer serializes all update handling anyway.
///
/// Failure model: a failed append (torn write, injected tear, failed
/// fsync) leaves the record un-acknowledged and marks the tail dirty; the
/// next operation first ftruncates back to the last committed offset, so
/// an in-process failure never leaves garbage mid-log for later records
/// to land after. (A crash before the heal leaves the torn tail on disk —
/// that is recovery's job.) If even the heal truncate fails the writer
/// seals itself and every further append reports kUnavailable.
class WalWriter {
 public:
  WalWriter() = default;
  ~WalWriter();
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Open (creating, or appending to) dir/wal_segment_name(first_epoch).
  /// An existing file must carry a valid header; a file shorter than the
  /// header is re-headered (the crash-between-create-and-header case).
  [[nodiscard]] Status open(const std::string& dir, std::uint64_t first_epoch,
                            WalOptions opt);

  /// Append one record and fsync per policy. Consults kWalAppend (tear)
  /// and kWalFsync (fail) on `injector`; bumps wal_records / wal_fsyncs
  /// on `metrics`. Only a kOk return means the record is committed.
  [[nodiscard]] Status append(const WalRecord& rec,
                              FaultInjector* injector = nullptr,
                              ServerMetrics* metrics = nullptr);

  /// fsync regardless of policy (checkpoint boundary; not fault-injected
  /// — GC correctness must not depend on the fault plan).
  [[nodiscard]] Status sync(ServerMetrics* metrics = nullptr);

  /// Seal the current segment (sync + close) and start a fresh one whose
  /// first record will be `first_epoch`.
  [[nodiscard]] Status rotate(std::uint64_t first_epoch,
                              ServerMetrics* metrics = nullptr);

  void close();

  [[nodiscard]] bool is_open() const { return fd_ >= 0 && !sealed_; }
  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] std::uint64_t records_appended() const { return records_; }
  [[nodiscard]] std::uint64_t bytes_appended() const { return bytes_; }
  [[nodiscard]] std::uint64_t fsyncs() const { return fsyncs_; }

 private:
  [[nodiscard]] Status heal_tail_();
  [[nodiscard]] Status do_fsync_(ServerMetrics* metrics);

  std::string dir_;
  std::string path_;
  WalOptions opt_;
  int fd_ = -1;
  bool sealed_ = false;
  bool dirty_tail_ = false;     ///< bytes past committed_ need truncating
  std::uint64_t committed_ = 0; ///< file offset of the last committed byte
  std::uint64_t since_fsync_ = 0;
  std::uint64_t records_ = 0;
  std::uint64_t bytes_ = 0;
  std::uint64_t fsyncs_ = 0;
};

// ---- reader -----------------------------------------------------------------

/// What scanning one segment found. `records` is the valid prefix;
/// anything after `valid_bytes` is a torn tail (or mid-file corruption —
/// indistinguishable, and both mean later bytes are unreachable).
struct WalScan {
  std::uint32_t version = 0;
  std::uint64_t first_epoch = 0;    ///< from the segment header
  std::vector<WalRecord> records;
  std::uint64_t valid_bytes = 0;    ///< offset one past the last valid record
  std::uint64_t file_bytes = 0;
  bool torn = false;                ///< file_bytes > valid_bytes
  std::string torn_reason;          ///< why the scan stopped, when it did
};

/// Scan a segment file. Only an unreadable file or an invalid segment
/// HEADER is an error; torn/corrupt records make a kOk scan with
/// torn=true. A header-corrupt file reports kInvalidArgument and a
/// valid_bytes of 0 — recovery truncates to zero and re-headers.
[[nodiscard]] Status scan_wal_segment(const std::string& path, WalScan* out);

/// Drop a torn tail: ftruncate `path` to `valid_bytes`.
[[nodiscard]] Status truncate_wal_segment(const std::string& path,
                                          std::uint64_t valid_bytes);

}  // namespace parsh::server
