// Typed status taxonomy of the serving layer.
//
// The robustness contract of src/server/ is that no exception crosses the
// server boundary: every failure — malformed frame, out-of-range vertex,
// overload shed, expired deadline, dead peer — is a Status with a stable
// wire code, so clients can branch on it (retry on RESOURCE_EXHAUSTED,
// give up on DEADLINE_EXCEEDED, reconnect on CONNECTION_CLOSED) and tests
// can assert the exact failure path taken.
#pragma once

#include <cstdint>
#include <string>
#include <utility>

namespace parsh::server {

enum class StatusCode : std::uint32_t {
  kOk = 0,
  /// Structurally invalid input: bad frame, bad count, bad flag.
  kInvalidArgument = 1,
  /// A vertex id outside the loaded graph's [0, n).
  kOutOfRange = 2,
  /// Load shed: the admission queue's estimated drain time exceeds the
  /// request's budget (or the queue/pool is at capacity). Retryable —
  /// responses carry a retry-after hint.
  kResourceExhausted = 3,
  /// The request's deadline expired; any answers included are partial.
  kDeadlineExceeded = 4,
  /// The server is shutting down or otherwise refusing work. Retryable
  /// against another replica, not this one.
  kUnavailable = 5,
  /// The peer hung up (or a fault injector pretended it did).
  kConnectionClosed = 6,
  /// A bug surfaced as an exception at the boundary and was converted.
  kInternal = 7,
};

[[nodiscard]] constexpr const char* status_name(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kOutOfRange: return "OUT_OF_RANGE";
    case StatusCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case StatusCode::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
    case StatusCode::kUnavailable: return "UNAVAILABLE";
    case StatusCode::kConnectionClosed: return "CONNECTION_CLOSED";
    case StatusCode::kInternal: return "INTERNAL";
  }
  return "UNKNOWN";
}

/// A code plus a human-readable detail message (empty on success).
struct Status {
  StatusCode code = StatusCode::kOk;
  std::string message;

  [[nodiscard]] bool ok() const { return code == StatusCode::kOk; }

  static Status success() { return {}; }
  static Status fail(StatusCode code, std::string message) {
    return {code, std::move(message)};
  }

  [[nodiscard]] std::string to_string() const {
    std::string s = status_name(code);
    if (!message.empty()) {
      s += ": ";
      s += message;
    }
    return s;
  }
};

}  // namespace parsh::server
