// Client side of the query service: framing, request/response matching,
// and retry discipline.
//
// Retries follow the standard overload-safe recipe: only retryable
// failures retry (RESOURCE_EXHAUSTED honoring the server's retry-after
// hint, UNAVAILABLE, and — over TCP — a dropped connection, via
// reconnect), with exponential backoff and deterministic decorrelated
// jitter so a fleet of sheds does not re-arrive in lockstep.
// DEADLINE_EXCEEDED and INVALID_ARGUMENT never retry: the first means the
// answer is already late, the second means retrying sends the same
// garbage. Jitter draws from the library's counter-based Rng, so a load
// generator run is reproducible per seed.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "random/rng.hpp"
#include "server/protocol.hpp"
#include "server/transport.hpp"
#include "util/deadline.hpp"
#include "util/types.hpp"

namespace parsh::server {

struct ClientConfig {
  /// Wall budget for one request/response round trip.
  double rpc_timeout_ms = 2000.0;
  /// Retry attempts after the first try (0 disables retries).
  int max_retries = 3;
  double backoff_base_ms = 2.0;
  double backoff_max_ms = 250.0;
  /// Jitter stream seed (determinism of load-generator runs).
  std::uint64_t seed = 1;
  /// When nonzero, a dropped connection reconnects to this loopback port.
  std::uint16_t reconnect_port = 0;
  /// Exactly-once identity sent with every update (v3). 0 derives a
  /// nonzero id deterministically from `seed`; set it explicitly when
  /// several clients must share one dedup identity (or to 0-with-intent
  /// via update_unkeyed paths that never retry).
  std::uint64_t client_id = 0;
};

/// Client-side tallies a load generator aggregates into its report.
struct ClientStats {
  std::uint64_t requests_sent = 0;
  std::uint64_t retries = 0;
  std::uint64_t sheds_seen = 0;
  std::uint64_t deadline_seen = 0;
  std::uint64_t degraded_seen = 0;
  std::uint64_t reconnects = 0;
  std::uint64_t failures = 0;  ///< requests that exhausted retries
};

class QueryClient {
 public:
  /// A disconnected client (the connect_tcp out-param target).
  QueryClient() = default;
  QueryClient(FdStream stream, ClientConfig cfg);

  /// Connect to a loopback TCP server (reconnect_port is set for you).
  [[nodiscard]] static Status connect_tcp(std::uint16_t port, ClientConfig cfg,
                                          QueryClient* out);

  /// One query batch, retried per the config. On success *out holds the
  /// server's response (which may itself report DEADLINE_EXCEEDED —
  /// that's an answer, not a transport failure).
  [[nodiscard]] Status query(const std::vector<std::pair<vid, vid>>& pairs,
                             std::uint32_t deadline_ms, QueryResponse* out);

  /// One update batch (v3 frames), retried on the same ladder as queries
  /// (RESOURCE_EXHAUSTED / UNAVAILABLE / CONNECTION_CLOSED, with backoff
  /// and reconnect). Safe to retry because every attempt re-sends the
  /// SAME (client_id, sequence) under a fresh frame id: a durable server
  /// that already applied the batch answers with the original verdict
  /// (kUpdateFlagDuplicate) instead of re-applying, so a transport
  /// failure after the apply no longer double-lands the delta. On success
  /// *out holds the server's verdict — which may itself be a typed
  /// failure (e.g. kUnavailable from a static server); that's an answer,
  /// not an error, and answers never retry.
  [[nodiscard]] Status update(std::vector<Edge> insert, std::vector<Edge> remove,
                              UpdateResponse* out);

  /// The identity update() stamps on its batches (config, or derived
  /// from the seed) and the next sequence it will use.
  [[nodiscard]] std::uint64_t client_id() const { return client_id_; }
  [[nodiscard]] std::uint64_t next_sequence() const { return next_seq_; }

  [[nodiscard]] Status ping();
  [[nodiscard]] Status stats(StatsSnapshot* out);

  [[nodiscard]] const ClientStats& client_stats() const { return stats_; }
  [[nodiscard]] bool connected() const { return stream_.valid(); }
  void close() { stream_.close(); }

 private:
  /// Send one frame and read frames until the matching response id (or a
  /// terminal error) arrives.
  [[nodiscard]] Status roundtrip_(const std::vector<std::uint8_t>& bytes,
                                  std::uint64_t want_id, QueryResponse* out);
  [[nodiscard]] double backoff_ms_(int attempt, double server_hint_ms);
  [[nodiscard]] bool reconnect_();

  FdStream stream_;
  ClientConfig cfg_;
  Rng jitter_{1};
  std::uint64_t jitter_draws_ = 0;
  std::uint64_t next_id_ = 1;
  std::uint64_t client_id_ = 0;  ///< nonzero once constructed
  std::uint64_t next_seq_ = 1;   ///< per-client update sequence
  ClientStats stats_;
};

}  // namespace parsh::server
