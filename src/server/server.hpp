// The hardened approx-SSSP query server.
//
// Thread architecture:
//
//   acceptor ──► one reader thread per connection ──► AdmissionQueue
//                                                          │ coalesced batches
//                                                  query worker threads
//                                                          │ responses
//                     per-connection write mutex ◄─────────┘
//
// Robustness contract (the reason this layer exists):
//   * no exception crosses the server boundary — every failure is a typed
//     Status, every request gets exactly one response or a closed
//     connection;
//   * every blocking operation is deadline-bounded or stop()-wakeable;
//   * a malformed frame draws an ERROR frame and a close (the stream is
//     desynchronized; resynchronizing by guessing would be worse);
//   * out-of-range vertex ids are well-formed requests with OUT_OF_RANGE
//     answers, not protocol errors;
//   * overload sheds at admission (RESOURCE_EXHAUSTED + retry-after)
//     before it burns query time, degrades precision before it sheds, and
//     serves partial DEADLINE_EXCEEDED answers rather than late ones;
//   * with a FaultPlan armed, the injector's interrupt points (frame
//     reads/writes, worker dispatch, admission) fire deterministically per
//     seed — the recovery paths above are testable, not theoretical.
//
// Reader threads stay parked in the connection map until stop() joins
// them (a connection's thread is joined once, at shutdown); a closed
// connection's fd is released immediately under its write mutex, so fds
// do not linger. open_connections() is the leak probe tests assert zero.
#pragma once

#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "server/admission.hpp"
#include "server/checkpoint.hpp"
#include "server/fault_injector.hpp"
#include "server/metrics.hpp"
#include "server/protocol.hpp"
#include "server/transport.hpp"
#include "sssp/approx_query.hpp"
#include "sssp/dynamic_approx.hpp"

namespace parsh::server {

struct ServerConfig {
  AdmissionParams admission;
  /// Query worker threads draining the admission queue.
  std::size_t query_workers = 1;
  /// Workspaces on the serving free list (0 = one per query worker). A
  /// pool smaller than the worker count is a second admission surface:
  /// checkout waits are deadline-bounded and time out into
  /// DEADLINE_EXCEEDED responses.
  std::size_t pool_workspaces = 0;
  /// Budget for writing one response frame to a (possibly slow) peer.
  double write_deadline_ms = 2000.0;
  /// Arm the deterministic fault injector with this plan/seed.
  bool enable_faults = false;
  std::uint64_t fault_seed = 0;
  FaultPlan faults;
};

class QueryServer {
 public:
  /// Serve `engine` built over `g`. Both must outlive the server; the
  /// graph is only consulted for its vertex-id range. A static server:
  /// kUpdateRequest frames answer kUnavailable.
  QueryServer(const Graph& g, const ApproxShortestPaths& engine, ServerConfig cfg);

  /// Serve a dynamic engine (must outlive the server). Update frames
  /// apply on the connection's reader thread — they never occupy a query
  /// worker, so queries are never shed by updates — and every query batch
  /// pins one snapshot for its whole lifetime, so in-flight batches
  /// finish on the pre-swap graph. With faults enabled, the injector's
  /// kSwap site is wired to the engine's swap hook.
  QueryServer(DynamicApproxShortestPaths& dynamic, ServerConfig cfg);

  /// Serve a durable dynamic engine (must outlive the server). Every
  /// accepted update goes through the Durability coordinator: exactly-once
  /// dedup on (client_id, sequence), WAL append inside the pre-publish
  /// seam, threshold checkpoints. Identical to the dynamic ctor otherwise;
  /// recovered_updates in stats() reports what startup replay re-applied.
  QueryServer(Durability& durable, ServerConfig cfg);
  ~QueryServer();
  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  /// Spawn the query workers (idempotent). Must precede serve_stream.
  void start();

  /// Listen on loopback TCP (port 0 = ephemeral; see port()) and accept
  /// connections on a background thread.
  [[nodiscard]] Status listen_tcp(std::uint16_t port);
  [[nodiscard]] std::uint16_t port() const { return listener_.port(); }

  /// Adopt an already-connected stream (the socketpair test path) and
  /// serve it on its own reader thread.
  void serve_stream(FdStream stream);

  /// Graceful shutdown: stop accepting, drain admitted requests, close
  /// every connection, join every thread. Idempotent.
  void stop();

  [[nodiscard]] StatsSnapshot stats() const;
  [[nodiscard]] std::size_t open_connections() const;
  [[nodiscard]] const ServerMetrics& metrics() const { return metrics_; }
  /// Null unless enable_faults.
  [[nodiscard]] FaultInjector* injector() { return injector_.get(); }
  [[nodiscard]] const AdmissionQueue& admission() const { return admission_; }

 private:
  struct Connection {
    std::uint64_t id = 0;
    FdStream stream;
    std::mutex write_mu;
    std::thread reader;
    std::atomic<bool> closing{false};
  };

  void acceptor_loop_();
  void reader_loop_(Connection* conn);
  void worker_loop_();
  /// Serialize + write under the connection's write mutex (write-site
  /// faults apply). A failed write closes the connection.
  void write_frame_(Connection& conn, const std::vector<std::uint8_t>& bytes);
  /// Any thread: mark closing, shutdown(2) under the write mutex (wakes a
  /// reader parked in poll), count the close. Leaves the fd open — closing
  /// it while the reader may still poll would hand the reader a recycled
  /// descriptor number.
  void shutdown_connection_(Connection& conn);
  /// Owner only (the reader at loop exit, or stop() after joining it):
  /// shutdown, then actually close(2) the fd under the write mutex.
  void release_connection_(Connection& conn);
  void handle_query_(Connection& conn, const std::vector<std::uint8_t>& payload);
  void handle_update_(Connection& conn, const std::vector<std::uint8_t>& payload);
  void serve_request_(const PendingRequest& pr, std::size_t skip_scales);
  [[nodiscard]] std::shared_ptr<Connection> find_connection_(std::uint64_t id);

  /// Exactly one of these is set. The static path reads `engine_`
  /// directly; the dynamic path takes one snapshot per query batch (the
  /// snapshot-lifetime rule: a batch's answers all come from the epoch it
  /// pinned, whose storage the shared_ptr keeps alive through any swap).
  const ApproxShortestPaths* engine_ = nullptr;
  DynamicApproxShortestPaths* dynamic_ = nullptr;
  Durability* durable_ = nullptr;  ///< set iff the durable ctor was used
  vid n_;
  ServerConfig cfg_;
  ServerMetrics metrics_;
  std::unique_ptr<FaultInjector> injector_;
  AdmissionQueue admission_;
  SsspWorkspacePool pool_;

  TcpListener listener_;
  std::thread acceptor_;
  std::vector<std::thread> workers_;

  mutable std::mutex conns_mu_;
  std::vector<std::shared_ptr<Connection>> conns_;
  std::uint64_t next_conn_id_ = 1;

  std::atomic<bool> stopping_{false};
  bool started_ = false;
  bool stopped_ = false;
};

}  // namespace parsh::server
