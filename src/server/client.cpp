#include "server/client.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

namespace parsh::server {

QueryClient::QueryClient(FdStream stream, ClientConfig cfg)
    : stream_(std::move(stream)),
      cfg_(cfg),
      jitter_(Rng(cfg.seed).split(0xc1)),
      // The dedup identity must be nonzero (0 opts out of exactly-once on
      // the wire) and stable per seed, so reruns of a load generator are
      // the same client to the server.
      client_id_(cfg.client_id != 0 ? cfg.client_id
                                    : (Rng(cfg.seed).split(0x1d).bits(0) | 1)) {}

Status QueryClient::connect_tcp(std::uint16_t port, ClientConfig cfg,
                                QueryClient* out) {
  FdStream stream;
  const Status s =
      tcp_connect_loopback(port, &stream, Deadline::after_ms(cfg.rpc_timeout_ms));
  if (!s.ok()) return s;
  cfg.reconnect_port = port;
  *out = QueryClient(std::move(stream), cfg);
  return Status::success();
}

bool QueryClient::reconnect_() {
  if (cfg_.reconnect_port == 0) return false;
  FdStream fresh;
  const Status s = tcp_connect_loopback(cfg_.reconnect_port, &fresh,
                                        Deadline::after_ms(cfg_.rpc_timeout_ms));
  if (!s.ok()) return false;
  stream_ = std::move(fresh);
  ++stats_.reconnects;
  return true;
}

double QueryClient::backoff_ms_(int attempt, double server_hint_ms) {
  // Exponential base doubling per attempt, capped, then decorrelated
  // jitter in [0.5, 1.5) of it. The server's retry-after hint, when
  // present, floors the wait — it knows the backlog, we don't.
  double base = cfg_.backoff_base_ms * static_cast<double>(1u << std::min(attempt, 16));
  base = std::min(base, cfg_.backoff_max_ms);
  const double jitter = 0.5 + jitter_.uniform(jitter_draws_++);
  return std::max(base * jitter, server_hint_ms);
}

Status QueryClient::roundtrip_(const std::vector<std::uint8_t>& bytes,
                               std::uint64_t want_id, QueryResponse* out) {
  const Deadline deadline = Deadline::after_ms(cfg_.rpc_timeout_ms);
  Status s = stream_.write_frame(bytes, deadline);
  if (!s.ok()) return s;
  for (;;) {
    Frame frame;
    s = stream_.read_frame(&frame, deadline);
    if (!s.ok()) return s;
    switch (frame.type) {
      case FrameType::kQueryResponse: {
        QueryResponse resp;
        s = decode_query_response(frame.payload, &resp);
        if (!s.ok()) return s;
        if (resp.id != want_id) continue;  // stale response from a prior timeout
        *out = std::move(resp);
        return Status::success();
      }
      case FrameType::kError: {
        Status err;
        if (!decode_error(frame.payload, &err).ok()) {
          return Status::fail(StatusCode::kInternal, "undecodable error frame");
        }
        return err;  // server closes after an error frame
      }
      case FrameType::kPong:
      case FrameType::kStatsResponse:
        continue;  // unrelated traffic on a shared connection
      default:
        return Status::fail(StatusCode::kInternal, "unexpected frame from server");
    }
  }
}

Status QueryClient::query(const std::vector<std::pair<vid, vid>>& pairs,
                          std::uint32_t deadline_ms, QueryResponse* out) {
  QueryRequest req;
  req.deadline_ms = deadline_ms;
  req.pairs = pairs;
  Status last = Status::fail(StatusCode::kInternal, "no attempt made");
  for (int attempt = 0; attempt <= cfg_.max_retries; ++attempt) {
    if (!stream_.valid() && !reconnect_()) {
      return Status::fail(StatusCode::kConnectionClosed, "not connected");
    }
    req.id = next_id_++;  // fresh id per attempt: stale replies are skipped
    std::vector<std::uint8_t> bytes;
    encode_query_request(bytes, req);
    ++stats_.requests_sent;

    QueryResponse resp;
    last = roundtrip_(bytes, req.id, &resp);
    double hint_ms = 0;
    if (last.ok()) {
      if (resp.status == StatusCode::kResourceExhausted) {
        ++stats_.sheds_seen;
        hint_ms = resp.retry_after_ms;
        last = Status::fail(StatusCode::kResourceExhausted, "shed by server");
      } else {
        if (resp.status == StatusCode::kDeadlineExceeded) ++stats_.deadline_seen;
        if (resp.flags & kRespFlagDegraded) ++stats_.degraded_seen;
        *out = std::move(resp);
        return Status::success();
      }
    }
    // Retry policy: sheds, unavailability and dead connections retry;
    // late answers and our own malformed requests do not.
    const bool retryable = last.code == StatusCode::kResourceExhausted ||
                           last.code == StatusCode::kUnavailable ||
                           last.code == StatusCode::kConnectionClosed;
    if (!retryable || attempt == cfg_.max_retries) break;
    if (last.code == StatusCode::kConnectionClosed) {
      stream_.close();
      if (!reconnect_()) break;
    }
    ++stats_.retries;
    const double wait = backoff_ms_(attempt, hint_ms);
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(wait));
  }
  ++stats_.failures;
  return last;
}

Status QueryClient::update(std::vector<Edge> insert, std::vector<Edge> remove,
                           UpdateResponse* out) {
  UpdateRequest req;
  req.client_id = client_id_;
  // The sequence burns whether or not the batch is acknowledged: if a
  // lost-ack batch DID land, a later batch reusing its sequence would be
  // answered with the stale verdict and silently dropped. The server
  // allows gaps, so over-burning is free.
  req.sequence = next_seq_++;
  req.insert = std::move(insert);
  req.remove = std::move(remove);

  Status last = Status::fail(StatusCode::kInternal, "no attempt made");
  for (int attempt = 0; attempt <= cfg_.max_retries; ++attempt) {
    if (!stream_.valid() && !reconnect_()) {
      last = Status::fail(StatusCode::kConnectionClosed, "not connected");
      break;
    }
    // Fresh frame id per attempt (stale replies are skipped by id); the
    // SAME (client_id, sequence) per attempt — that pair is what lets a
    // durable server recognize "this batch again" and answer the original
    // verdict instead of re-applying.
    req.id = next_id_++;
    std::vector<std::uint8_t> bytes;
    encode_update_request(bytes, req);
    ++stats_.requests_sent;

    const Deadline deadline = Deadline::after_ms(cfg_.rpc_timeout_ms);
    last = stream_.write_frame(bytes, deadline);
    while (last.ok()) {
      Frame frame;
      last = stream_.read_frame(&frame, deadline);
      if (!last.ok()) break;
      if (frame.type == FrameType::kUpdateResponse) {
        UpdateResponse resp;
        last = decode_update_response(frame.payload, &resp);
        if (!last.ok()) break;
        if (resp.id != req.id) continue;  // stale reply from a prior timeout
        // A response is an answer — even kUnavailable from a static
        // server. Only transport failures re-enter the attempt loop.
        *out = resp;
        return Status::success();
      }
      if (frame.type == FrameType::kError) {
        Status err;
        if (!decode_error(frame.payload, &err).ok()) {
          err = Status::fail(StatusCode::kInternal, "undecodable error frame");
        }
        last = std::move(err);  // server closes after an error frame
        break;
      }
      // Unrelated traffic on a shared connection.
    }

    const bool retryable = last.code == StatusCode::kResourceExhausted ||
                           last.code == StatusCode::kUnavailable ||
                           last.code == StatusCode::kConnectionClosed ||
                           last.code == StatusCode::kDeadlineExceeded;
    if (!retryable || attempt == cfg_.max_retries) break;
    if (last.code == StatusCode::kConnectionClosed ||
        last.code == StatusCode::kDeadlineExceeded) {
      // The rpc deadline expiring mid-roundtrip leaves the stream mid-
      // frame — desynchronized either way; reconnect before retrying.
      stream_.close();
      if (!reconnect_()) break;
    }
    ++stats_.retries;
    const double wait = backoff_ms_(attempt, 0);
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(wait));
  }
  ++stats_.failures;
  return last;
}

Status QueryClient::ping() {
  const Deadline deadline = Deadline::after_ms(cfg_.rpc_timeout_ms);
  const std::uint64_t nonce = next_id_++;
  std::vector<std::uint8_t> bytes;
  encode_ping(bytes, nonce, /*pong=*/false);
  Status s = stream_.write_frame(bytes, deadline);
  if (!s.ok()) return s;
  for (;;) {
    Frame frame;
    s = stream_.read_frame(&frame, deadline);
    if (!s.ok()) return s;
    if (frame.type != FrameType::kPong) continue;
    std::uint64_t got = 0;
    s = decode_ping(frame.payload, &got);
    if (!s.ok()) return s;
    if (got == nonce) return Status::success();
  }
}

Status QueryClient::stats(StatsSnapshot* out) {
  const Deadline deadline = Deadline::after_ms(cfg_.rpc_timeout_ms);
  std::vector<std::uint8_t> bytes;
  encode_stats_request(bytes);
  Status s = stream_.write_frame(bytes, deadline);
  if (!s.ok()) return s;
  for (;;) {
    Frame frame;
    s = stream_.read_frame(&frame, deadline);
    if (!s.ok()) return s;
    if (frame.type != FrameType::kStatsResponse) continue;
    return decode_stats_response(frame.payload, out);
  }
}

}  // namespace parsh::server
