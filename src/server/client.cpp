#include "server/client.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

namespace parsh::server {

QueryClient::QueryClient(FdStream stream, ClientConfig cfg)
    : stream_(std::move(stream)), cfg_(cfg), jitter_(Rng(cfg.seed).split(0xc1)) {}

Status QueryClient::connect_tcp(std::uint16_t port, ClientConfig cfg,
                                QueryClient* out) {
  FdStream stream;
  const Status s =
      tcp_connect_loopback(port, &stream, Deadline::after_ms(cfg.rpc_timeout_ms));
  if (!s.ok()) return s;
  cfg.reconnect_port = port;
  *out = QueryClient(std::move(stream), cfg);
  return Status::success();
}

bool QueryClient::reconnect_() {
  if (cfg_.reconnect_port == 0) return false;
  FdStream fresh;
  const Status s = tcp_connect_loopback(cfg_.reconnect_port, &fresh,
                                        Deadline::after_ms(cfg_.rpc_timeout_ms));
  if (!s.ok()) return false;
  stream_ = std::move(fresh);
  ++stats_.reconnects;
  return true;
}

double QueryClient::backoff_ms_(int attempt, double server_hint_ms) {
  // Exponential base doubling per attempt, capped, then decorrelated
  // jitter in [0.5, 1.5) of it. The server's retry-after hint, when
  // present, floors the wait — it knows the backlog, we don't.
  double base = cfg_.backoff_base_ms * static_cast<double>(1u << std::min(attempt, 16));
  base = std::min(base, cfg_.backoff_max_ms);
  const double jitter = 0.5 + jitter_.uniform(jitter_draws_++);
  return std::max(base * jitter, server_hint_ms);
}

Status QueryClient::roundtrip_(const std::vector<std::uint8_t>& bytes,
                               std::uint64_t want_id, QueryResponse* out) {
  const Deadline deadline = Deadline::after_ms(cfg_.rpc_timeout_ms);
  Status s = stream_.write_frame(bytes, deadline);
  if (!s.ok()) return s;
  for (;;) {
    Frame frame;
    s = stream_.read_frame(&frame, deadline);
    if (!s.ok()) return s;
    switch (frame.type) {
      case FrameType::kQueryResponse: {
        QueryResponse resp;
        s = decode_query_response(frame.payload, &resp);
        if (!s.ok()) return s;
        if (resp.id != want_id) continue;  // stale response from a prior timeout
        *out = std::move(resp);
        return Status::success();
      }
      case FrameType::kError: {
        Status err;
        if (!decode_error(frame.payload, &err).ok()) {
          return Status::fail(StatusCode::kInternal, "undecodable error frame");
        }
        return err;  // server closes after an error frame
      }
      case FrameType::kPong:
      case FrameType::kStatsResponse:
        continue;  // unrelated traffic on a shared connection
      default:
        return Status::fail(StatusCode::kInternal, "unexpected frame from server");
    }
  }
}

Status QueryClient::query(const std::vector<std::pair<vid, vid>>& pairs,
                          std::uint32_t deadline_ms, QueryResponse* out) {
  QueryRequest req;
  req.deadline_ms = deadline_ms;
  req.pairs = pairs;
  Status last = Status::fail(StatusCode::kInternal, "no attempt made");
  for (int attempt = 0; attempt <= cfg_.max_retries; ++attempt) {
    if (!stream_.valid() && !reconnect_()) {
      return Status::fail(StatusCode::kConnectionClosed, "not connected");
    }
    req.id = next_id_++;  // fresh id per attempt: stale replies are skipped
    std::vector<std::uint8_t> bytes;
    encode_query_request(bytes, req);
    ++stats_.requests_sent;

    QueryResponse resp;
    last = roundtrip_(bytes, req.id, &resp);
    double hint_ms = 0;
    if (last.ok()) {
      if (resp.status == StatusCode::kResourceExhausted) {
        ++stats_.sheds_seen;
        hint_ms = resp.retry_after_ms;
        last = Status::fail(StatusCode::kResourceExhausted, "shed by server");
      } else {
        if (resp.status == StatusCode::kDeadlineExceeded) ++stats_.deadline_seen;
        if (resp.flags & kRespFlagDegraded) ++stats_.degraded_seen;
        *out = std::move(resp);
        return Status::success();
      }
    }
    // Retry policy: sheds, unavailability and dead connections retry;
    // late answers and our own malformed requests do not.
    const bool retryable = last.code == StatusCode::kResourceExhausted ||
                           last.code == StatusCode::kUnavailable ||
                           last.code == StatusCode::kConnectionClosed;
    if (!retryable || attempt == cfg_.max_retries) break;
    if (last.code == StatusCode::kConnectionClosed) {
      stream_.close();
      if (!reconnect_()) break;
    }
    ++stats_.retries;
    const double wait = backoff_ms_(attempt, hint_ms);
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(wait));
  }
  ++stats_.failures;
  return last;
}

Status QueryClient::update(std::vector<Edge> insert, std::vector<Edge> remove,
                           UpdateResponse* out) {
  if (!stream_.valid() && !reconnect_()) {
    return Status::fail(StatusCode::kConnectionClosed, "not connected");
  }
  UpdateRequest req;
  req.id = next_id_++;
  req.insert = std::move(insert);
  req.remove = std::move(remove);
  std::vector<std::uint8_t> bytes;
  encode_update_request(bytes, req);
  ++stats_.requests_sent;

  const Deadline deadline = Deadline::after_ms(cfg_.rpc_timeout_ms);
  Status s = stream_.write_frame(bytes, deadline);
  if (!s.ok()) return s;
  for (;;) {
    Frame frame;
    s = stream_.read_frame(&frame, deadline);
    if (!s.ok()) return s;
    switch (frame.type) {
      case FrameType::kUpdateResponse: {
        UpdateResponse resp;
        s = decode_update_response(frame.payload, &resp);
        if (!s.ok()) return s;
        if (resp.id != req.id) continue;  // stale reply from a prior timeout
        *out = resp;
        return Status::success();
      }
      case FrameType::kError: {
        Status err;
        if (!decode_error(frame.payload, &err).ok()) {
          return Status::fail(StatusCode::kInternal, "undecodable error frame");
        }
        return err;  // server closes after an error frame
      }
      default:
        continue;  // unrelated traffic on a shared connection
    }
  }
}

Status QueryClient::ping() {
  const Deadline deadline = Deadline::after_ms(cfg_.rpc_timeout_ms);
  const std::uint64_t nonce = next_id_++;
  std::vector<std::uint8_t> bytes;
  encode_ping(bytes, nonce, /*pong=*/false);
  Status s = stream_.write_frame(bytes, deadline);
  if (!s.ok()) return s;
  for (;;) {
    Frame frame;
    s = stream_.read_frame(&frame, deadline);
    if (!s.ok()) return s;
    if (frame.type != FrameType::kPong) continue;
    std::uint64_t got = 0;
    s = decode_ping(frame.payload, &got);
    if (!s.ok()) return s;
    if (got == nonce) return Status::success();
  }
}

Status QueryClient::stats(StatsSnapshot* out) {
  const Deadline deadline = Deadline::after_ms(cfg_.rpc_timeout_ms);
  std::vector<std::uint8_t> bytes;
  encode_stats_request(bytes);
  Status s = stream_.write_frame(bytes, deadline);
  if (!s.ok()) return s;
  for (;;) {
    Frame frame;
    s = stream_.read_frame(&frame, deadline);
    if (!s.ok()) return s;
    if (frame.type != FrameType::kStatsResponse) continue;
    return decode_stats_response(frame.payload, out);
  }
}

}  // namespace parsh::server
