// Wire protocol of the approx-SSSP query service.
//
// Length-prefixed binary frames over a byte stream (TCP socket, Unix
// socketpair or pipe). Every frame:
//
//   offset  size  field
//   0       2     magic 0x5350 ("PS", little-endian u16)
//   2       1     protocol version (kProtocolVersion)
//   3       1     frame type (FrameType)
//   4       4     payload length in bytes (little-endian u32)
//   8       len   payload
//
// All integers are little-endian fixed-width; doubles are IEEE-754 bit
// patterns (memcpy'd, the only representation this codebase runs on).
// Parsing is strict: unknown magic/version/type, payloads above
// kMaxPayloadBytes, batch counts above kMaxBatchPairs, or payloads whose
// length disagrees with their count field are rejected with a typed
// Status — a malformed frame can desynchronize the stream, so the server
// answers with an ERROR frame and closes the connection rather than
// guessing where the next frame starts. Vertex-id range checks against
// the loaded graph happen per query at admission (OUT_OF_RANGE answers),
// not at decode: the frame is well-formed, the request content is not.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "server/status.hpp"
#include "util/types.hpp"

namespace parsh::server {

inline constexpr std::uint16_t kMagic = 0x5350;  // "PS"
/// v2 added graph updates: the kUpdateRequest/kUpdateResponse frames and a
/// serving-epoch field in every query response. v3 makes updates durable
/// and exactly-once: update request payloads carry (client_id, sequence)
/// so a retried batch can be recognized and answered with its original
/// result instead of re-applied. The server still accepts v1/v2 query,
/// ping and stats frames (their payloads are unchanged) but update frames
/// must arrive at v3 — the dedup identity is not optional once retries
/// exist — and every response goes out at v3.
inline constexpr std::uint8_t kProtocolVersion = 3;
inline constexpr std::size_t kFrameHeaderBytes = 8;
/// Frames larger than this are rejected before the payload is read (a
/// 4 GiB length prefix must not allocate 4 GiB).
inline constexpr std::size_t kMaxPayloadBytes = 1u << 20;
/// Most query pairs one request frame may carry.
inline constexpr std::size_t kMaxBatchPairs = 4096;
/// Most edges (inserts + removes together) one update frame may carry.
inline constexpr std::size_t kMaxUpdateEdges = 32'768;
/// Deadlines are capped: nobody waits a minute for a distance.
inline constexpr std::uint32_t kMaxDeadlineMs = 60'000;

enum class FrameType : std::uint8_t {
  kQueryRequest = 1,
  kQueryResponse = 2,
  kPing = 3,
  kPong = 4,
  kStatsRequest = 5,
  kStatsResponse = 6,
  /// Server -> client: the previous frame was unparseable; the connection
  /// closes after this frame. Payload: status code u32 + utf8 detail.
  kError = 7,
  /// v2 only: a batched graph mutation (see UpdateRequest).
  kUpdateRequest = 8,
  /// v2 only: verdict + rebuild statistics for one update batch.
  kUpdateResponse = 9,
};

[[nodiscard]] constexpr bool frame_type_known(std::uint8_t t) {
  return t >= 1 && t <= 9;
}

/// A parsed frame: type plus raw payload bytes.
struct Frame {
  FrameType type = FrameType::kError;
  std::vector<std::uint8_t> payload;
};

// ---- request / response messages --------------------------------------------

/// Client -> server: a batch of s-t distance queries under one deadline.
struct QueryRequest {
  std::uint64_t id = 0;          ///< echoed in the response
  std::uint32_t deadline_ms = 0; ///< 0 = server default; capped at kMaxDeadlineMs
  std::uint32_t flags = 0;       ///< reserved (must be 0 in v1)
  std::vector<std::pair<vid, vid>> pairs;
};

/// One answer inside a query response.
struct QueryAnswer {
  StatusCode status = StatusCode::kOk;
  double estimate = 0;       ///< +inf encodes "unreached/unanswered"
  std::uint32_t scale = 0;   ///< distance scale that answered
};

/// Response-level flag bits.
inline constexpr std::uint32_t kRespFlagDegraded = 1u << 0;  ///< served from a degraded tier
inline constexpr std::uint32_t kRespFlagPartial = 1u << 1;   ///< some answers are partial

/// Server -> client: the batch verdict. `status` is the frame-level
/// outcome (a shed request carries kResourceExhausted here and no
/// answers); per-query outcomes live in `answers[i].status`.
struct QueryResponse {
  std::uint64_t id = 0;
  StatusCode status = StatusCode::kOk;
  std::uint32_t retry_after_ms = 0;  ///< backoff hint when shed
  std::uint32_t flags = 0;
  /// Graph epoch the whole batch was served from (v2). 0 on a static
  /// server or before the first update; a value below the newest accepted
  /// update means the answers are one swap stale — the contract is that a
  /// batch is always internally consistent, never that it is newest.
  std::uint64_t epoch = 0;
  std::vector<QueryAnswer> answers;
};

/// Client -> server (v3): a batched graph mutation. Inserts double as
/// reweights; removes delete if present (GraphDelta semantics). Updates
/// are applied on the connection's reader thread — they never occupy a
/// query worker and never shed queries — and queries in flight finish on
/// the pre-update snapshot.
///
/// Exactly-once identity: (client_id, sequence). A client picks one
/// nonzero client_id for its lifetime and numbers its update batches
/// 1, 2, 3, …; a retry re-sends the SAME sequence (under a fresh frame
/// id), and a durable server answers a sequence it already applied with
/// the original result (kUpdateFlagDuplicate set) instead of re-applying.
/// client_id 0 opts out: every such batch is applied unconditionally
/// (still durably logged), which is only safe for callers that never
/// retry.
struct UpdateRequest {
  std::uint64_t id = 0;     ///< echoed in the response
  std::uint32_t flags = 0;  ///< reserved (must be 0)
  std::uint64_t client_id = 0;  ///< exactly-once identity; 0 = no dedup
  std::uint64_t sequence = 0;   ///< per-client batch number, from 1
  std::vector<Edge> insert;
  std::vector<Edge> remove;  ///< weight field ignored
};

/// Response-level flag: the rebuild recomputed every scale (the ladder
/// moved, or force_full_rebuild was set).
inline constexpr std::uint32_t kUpdateFlagFullRebuild = 1u << 0;
/// Response-level flag (v3): this sequence was already applied; the
/// response replays the original verdict and nothing was re-applied.
inline constexpr std::uint32_t kUpdateFlagDuplicate = 1u << 1;

/// Server -> client (v2): one update batch's verdict. On kOk the epoch is
/// the one the new snapshot serves as, and the dirty/total counters say
/// how much the incremental path actually recomputed. A static server
/// (no DynamicApproxShortestPaths) answers kUnavailable; a batch with an
/// out-of-range endpoint answers kOutOfRange and applies nothing.
struct UpdateResponse {
  std::uint64_t id = 0;
  StatusCode status = StatusCode::kOk;
  std::uint32_t flags = 0;
  std::uint64_t epoch = 0;
  double rebuild_ms = 0;
  std::uint32_t dirty_scales = 0;
  std::uint32_t total_scales = 0;
  std::uint64_t dirty_clusters = 0;
  std::uint64_t total_clusters = 0;
  std::uint64_t inserted = 0;
  std::uint64_t removed = 0;
  std::uint64_t reweighted = 0;
  std::uint64_t noops = 0;
};

/// Server counters snapshot carried by a kStatsResponse (field order is
/// part of the wire format; append only).
struct StatsSnapshot {
  std::uint64_t frames_received = 0;
  std::uint64_t invalid_frames = 0;
  std::uint64_t requests_admitted = 0;
  std::uint64_t requests_shed = 0;
  std::uint64_t queries_ok = 0;
  std::uint64_t queries_deadline_exceeded = 0;
  std::uint64_t queries_out_of_range = 0;
  std::uint64_t queries_degraded = 0;
  std::uint64_t batches_served = 0;
  std::uint64_t connections_opened = 0;
  std::uint64_t connections_closed = 0;
  std::uint64_t faults_injected = 0;
  std::uint64_t pool_checkout_timeouts = 0;
  std::uint64_t updates_applied = 0;
  std::uint64_t updates_rejected = 0;
  std::uint64_t stale_batches = 0;
  // v3 durability counters (appended; older clients ignore them).
  std::uint64_t updates_deduped = 0;    ///< duplicate sequences answered from the table
  std::uint64_t wal_records = 0;        ///< records appended to the WAL
  std::uint64_t wal_fsyncs = 0;         ///< fsyncs issued by the WAL policy
  std::uint64_t checkpoints_written = 0;
  std::uint64_t wal_failures = 0;       ///< appends/fsyncs that failed (update not applied)
  std::uint64_t recovered_updates = 0;  ///< WAL records replayed at startup
};

// ---- encoding ---------------------------------------------------------------
// Encoders append a complete frame (header + payload) to `out`, which can
// then be handed to the transport in one write.

void append_frame(std::vector<std::uint8_t>& out, FrameType type,
                  const std::uint8_t* payload, std::size_t len);

void encode_query_request(std::vector<std::uint8_t>& out, const QueryRequest& req);
void encode_query_response(std::vector<std::uint8_t>& out, const QueryResponse& resp);
void encode_update_request(std::vector<std::uint8_t>& out, const UpdateRequest& req);
void encode_update_response(std::vector<std::uint8_t>& out, const UpdateResponse& resp);
void encode_ping(std::vector<std::uint8_t>& out, std::uint64_t nonce, bool pong);
void encode_stats_request(std::vector<std::uint8_t>& out);
void encode_stats_response(std::vector<std::uint8_t>& out, const StatsSnapshot& s);
void encode_error(std::vector<std::uint8_t>& out, const Status& status);

// ---- decoding ---------------------------------------------------------------

/// Validate a frame header. On success fills type/payload_len.
[[nodiscard]] Status parse_frame_header(const std::uint8_t header[kFrameHeaderBytes],
                                        FrameType* type, std::uint32_t* payload_len);

[[nodiscard]] Status decode_query_request(const std::vector<std::uint8_t>& payload,
                                          QueryRequest* out);
[[nodiscard]] Status decode_query_response(const std::vector<std::uint8_t>& payload,
                                           QueryResponse* out);
[[nodiscard]] Status decode_update_request(const std::vector<std::uint8_t>& payload,
                                           UpdateRequest* out);
[[nodiscard]] Status decode_update_response(const std::vector<std::uint8_t>& payload,
                                            UpdateResponse* out);
[[nodiscard]] Status decode_ping(const std::vector<std::uint8_t>& payload,
                                 std::uint64_t* nonce);
[[nodiscard]] Status decode_stats_response(const std::vector<std::uint8_t>& payload,
                                           StatsSnapshot* out);
[[nodiscard]] Status decode_error(const std::vector<std::uint8_t>& payload,
                                  Status* out);

}  // namespace parsh::server
