#!/usr/bin/env python3
"""Markdown link check for the docs tree (CI's docs job).

Usage:
    docs/check_links.py [FILE.md ...]        # default: README.md ROADMAP.md docs/*.md

For every inline markdown link [text](target) in the given files:
  * http(s)/mailto links are skipped (no network in CI);
  * relative links must resolve to an existing file or directory,
    relative to the file containing the link;
  * fragment links (target.md#anchor or #anchor) must match a heading in
    the target file, using GitHub's slug rules (lowercase, spaces to
    dashes, punctuation dropped).

Exit code 0 when every link resolves, 1 otherwise (one line per broken
link). Links inside fenced code blocks are ignored.
"""

import glob
import os
import re
import sys

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$")
FENCE_RE = re.compile(r"^\s*(```|~~~)")


def slugify(heading: str) -> str:
    """GitHub-style anchor slug: lowercase, strip punctuation, dashes."""
    heading = re.sub(r"[`*_]", "", heading.strip())
    heading = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", heading)  # unwrap links
    slug = []
    for ch in heading.lower():
        if ch.isalnum():
            slug.append(ch)
        elif ch in " -":
            slug.append("-")
    return "".join(slug)


def anchors_of(path: str) -> set:
    anchors = set()
    in_fence = False
    with open(path, encoding="utf-8") as f:
        for line in f:
            if FENCE_RE.match(line):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            m = HEADING_RE.match(line)
            if m:
                anchors.add(slugify(m.group(1)))
    return anchors


def links_of(path: str):
    in_fence = False
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            if FENCE_RE.match(line):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            for m in LINK_RE.finditer(line):
                yield lineno, m.group(1)


def check_file(path: str) -> list:
    errors = []
    base = os.path.dirname(path)
    for lineno, target in links_of(path):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        dest, _, fragment = target.partition("#")
        dest_path = os.path.normpath(os.path.join(base, dest)) if dest else path
        if not os.path.exists(dest_path):
            errors.append(f"{path}:{lineno}: broken link {target!r} "
                          f"({dest_path} does not exist)")
            continue
        if fragment and dest_path.endswith(".md"):
            if slugify(fragment) not in anchors_of(dest_path):
                errors.append(f"{path}:{lineno}: broken anchor {target!r} "
                              f"(no heading slugs to #{fragment} in {dest_path})")
    return errors


def main() -> int:
    files = sys.argv[1:] or (
        ["README.md", "ROADMAP.md"] + sorted(glob.glob("docs/*.md")))
    errors = []
    checked = 0
    for path in files:
        if not os.path.exists(path):
            errors.append(f"{path}: file to check does not exist")
            continue
        checked += 1
        errors.extend(check_file(path))
    for err in errors:
        print(err)
    print(f"checked {checked} file(s): "
          f"{'OK' if not errors else f'{len(errors)} broken link(s)'}")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
