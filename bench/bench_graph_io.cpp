// GRAPH-IO — the binary CSR (.pcsr) pipeline end to end: stream an RMAT
// straight to disk without materializing an edge list, memory-map it back
// (zero-copy, O(1) warm-up), and drive est_cluster + a hopset build off
// the mapped storage — flat and delta-varint compressed — so the on-disk
// format's three claims are recorded numbers, not prose:
//
//   1. load: mmap load time and the RSS it adds are O(1) in the graph
//      (pages fault in lazily as algorithms touch them), vs the text
//      edge-list reader which pays full parse time + full materialized
//      arrays up front (skipped above --text-cap edges).
//   2. compression: bytes/arc of the delta-varint adjacency vs the flat
//      4-byte targets, with est_cluster output bit-identical either way
//      (the identical column is computed, and compressed_rounds proves
//      the compressed decode path actually ran).
//   3. scale: est_cluster and build_hopset complete on the streamed
//      graph; times and PRAM counters land in BENCH_graph_io.json.
//
// Streamed files are cached under --cache-dir keyed by (n, m, seed), so
// repeat runs (and the CI lane's actions/cache) skip the streaming pass.
//
//   ./bench_graph_io --stream-edges 10000000 --reps 3
#include "bench_common.hpp"

#include <sys/stat.h>

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>

namespace {

using namespace parsh;
using namespace parsh::bench;

/// VmRSS (current) or VmHWM (peak) of this process in KiB, from
/// /proc/self/status; 0 if unreadable (non-Linux).
std::uint64_t status_kb(const char* key) {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (!f) return 0;
  char line[256];
  std::uint64_t kb = 0;
  const std::size_t key_len = std::char_traits<char>::length(key);
  while (std::fgets(line, sizeof line, f)) {
    if (std::strncmp(line, key, key_len) == 0 && line[key_len] == ':') {
      unsigned long long v = 0;
      if (std::sscanf(line + key_len + 1, "%llu", &v) == 1) kb = v;
      break;
    }
  }
  std::fclose(f);
  return kb;
}

std::uint64_t rss_kb() { return status_kb("VmRSS"); }
std::uint64_t peak_rss_kb() { return status_kb("VmHWM"); }

std::uint64_t file_bytes(const std::string& path) {
  struct stat st {};
  return ::stat(path.c_str(), &st) == 0 ? static_cast<std::uint64_t>(st.st_size) : 0;
}

bool file_exists(const std::string& path) {
  struct stat st {};
  return ::stat(path.c_str(), &st) == 0;
}

/// Best-of-reps timing; also returns the work/round counters of the best.
template <typename F>
Run best_of(int reps, F f) {
  Run best;
  best.seconds = 1e300;
  for (int r = 0; r < reps; ++r) {
    const Run run = timed(f);
    if (run.seconds < best.seconds) best = run;
  }
  return best;
}

bool same_clustering(const Clustering& a, const Clustering& b) {
  return a.num_clusters == b.num_clusters && a.cluster_of == b.cluster_of &&
         a.center == b.center && a.parent == b.parent &&
         a.dist_to_center == b.dist_to_center;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const auto m = static_cast<eid>(cli.get_int("stream-edges", 10000000));
  const vid n = static_cast<vid>(cli.get_int("n", static_cast<long long>(m / 8)));
  const std::uint64_t seed = cli.get_seed("seed", 1);
  const int reps = static_cast<int>(cli.get_int("reps", 3));
  const auto text_cap = static_cast<eid>(cli.get_int("text-cap", 20000000));
  const double beta = cli.get_double("beta", 0.4);
  const std::string cache_dir = cli.get("cache-dir", "graphs");
  const bool run_hopset = cli.get_bool("hopset", true);

  ::mkdir(cache_dir.c_str(), 0755);
  char stem[128];
  std::snprintf(stem, sizeof stem, "/rmat_n%u_m%" PRIu64 "_s%" PRIu64,
                n, static_cast<std::uint64_t>(m), seed);
  const std::string flat_path = cache_dir + stem + ".pcsr";
  const std::string comp_path = cache_dir + stem + ".c.pcsr";
  const std::string text_path = cache_dir + stem + ".txt";

  JsonReport report("graph_io");
  Table table({"phase", "variant", "seconds", "rss-delta(MB)", "peak-rss(MB)",
               "file(MB)", "bytes/arc", "detail"});
  auto add_row = [&](const char* phase, const char* variant, double seconds,
                     std::uint64_t rss_delta, std::uint64_t peak,
                     std::uint64_t fbytes, double bytes_per_arc,
                     const std::string& detail) {
    table.row()
        .cell(phase)
        .cell(variant)
        .cell(seconds, 4)
        .cell(static_cast<double>(rss_delta) / 1024.0, 1)
        .cell(static_cast<double>(peak) / 1024.0, 1)
        .cell(static_cast<double>(fbytes) / (1024.0 * 1024.0), 1)
        .cell(bytes_per_arc, 3)
        .cell(detail);
    report.row()
        .field("bench", "graph_io")
        .field("phase", phase)
        .field("variant", variant)
        .field("n", static_cast<std::uint64_t>(n))
        .field("stream_edges", static_cast<std::uint64_t>(m))
        .field("seed", static_cast<std::uint64_t>(seed))
        .field("seconds", seconds)
        .field("rss_delta_kb", rss_delta)
        .field("peak_rss_kb", peak)
        .field("file_bytes", fbytes)
        .field("bytes_per_arc", bytes_per_arc)
        .field("detail", detail);
  };

  // --- Phase 1: stream the RMAT to disk (cached across runs) -------------
  for (const bool compress : {false, true}) {
    const std::string& path = compress ? comp_path : flat_path;
    double secs = 0;
    if (!file_exists(path)) {
      secs = timed([&] { stream_rmat_pcsr(path, n, m, seed, 0.57, 0.19, 0.19,
                                          compress); }).seconds;
    }
    const PcsrInfo info = read_pcsr_info(path);
    add_row("stream", compress ? "compressed" : "flat", secs, 0, peak_rss_kb(),
            file_bytes(path),
            static_cast<double>(info.adjacency_bytes) /
                static_cast<double>(info.num_arcs ? info.num_arcs : 1),
            secs == 0 ? "cached" : "streamed");
  }

  // --- Phase 2: load timing — mmap zero-copy vs the text reader ----------
  Graph g;  // stays the mmap-backed flat graph for the algorithm phases
  {
    const std::uint64_t before = rss_kb();
    const Run load = best_of(reps, [&] { g = load_pcsr_file(flat_path); });
    const std::uint64_t after = rss_kb();
    char detail[96];
    std::snprintf(detail, sizeof detail, "n=%u arcs=%" PRIu64, g.num_vertices(),
                  static_cast<std::uint64_t>(g.num_arcs()));
    add_row("load", "pcsr-mmap", load.seconds, after - (before < after ? before : after),
            peak_rss_kb(), file_bytes(flat_path), 4.0, detail);
  }
  {
    Graph gz;
    const std::uint64_t before = rss_kb();
    const Run load = best_of(reps, [&] {
      PcsrLoadOptions opt;
      opt.verify_checksums = true;
      gz = load_pcsr_file(comp_path, opt);
    });
    const std::uint64_t after = rss_kb();
    add_row("load", "pcsr-mmap-compressed+checksums", load.seconds,
            after - (before < after ? before : after), peak_rss_kb(),
            file_bytes(comp_path),
            static_cast<double>(gz.adjacency_bytes()) /
                static_cast<double>(gz.num_arcs() ? gz.num_arcs() : 1),
            "per-section fnv1a verified");
  }
  if (g.num_arcs() / 2 <= text_cap) {
    if (!file_exists(text_path)) write_edge_list_file(text_path, g);
    Graph gt;
    const std::uint64_t before = rss_kb();
    const Run load = timed([&] { gt = read_edge_list_file(text_path); });
    const std::uint64_t after = rss_kb();
    const bool same = gt.num_vertices() == g.num_vertices() &&
                      gt.storage().offsets.size() == g.storage().offsets.size() &&
                      std::equal(gt.storage().offsets.begin(), gt.storage().offsets.end(),
                                 g.storage().offsets.begin()) &&
                      std::equal(gt.storage().targets.begin(), gt.storage().targets.end(),
                                 g.storage().targets.begin());
    add_row("load", "text-edge-list", load.seconds, after - before, peak_rss_kb(),
            file_bytes(text_path), 4.0,
            same ? "csr identical to mmap" : "MISMATCH vs mmap");
  } else {
    std::printf("(text reader comparison skipped: %" PRIu64
                " edges > --text-cap %" PRIu64 ")\n",
                static_cast<std::uint64_t>(g.num_arcs() / 2),
                static_cast<std::uint64_t>(text_cap));
  }

  // --- Phase 3: est_cluster on mapped storage, flat vs compressed --------
  Clustering flat_c;
  {
    EstClusterWorkspace ws;
    est_cluster(g, beta, seed, ws);  // warm
    const std::uint64_t before = rss_kb();
    const Run run = best_of(reps, [&] { flat_c = est_cluster(g, beta, seed, ws); });
    const std::uint64_t after = rss_kb();
    char detail[96];
    std::snprintf(detail, sizeof detail, "clusters=%u work=%" PRIu64,
                  flat_c.num_clusters, run.counters.work);
    add_row("est_cluster", "flat", run.seconds, after - before, peak_rss_kb(),
            0, 4.0, detail);
  }
  {
    const Graph gz = load_pcsr_file(comp_path);
    EstClusterWorkspace ws;
    Clustering c = est_cluster(gz, beta, seed, ws);  // warm
    const Run run = best_of(reps, [&] { c = est_cluster(gz, beta, seed, ws); });
    char detail[96];
    std::snprintf(detail, sizeof detail, "identical=%d compressed_rounds=%" PRIu64,
                  same_clustering(c, flat_c) ? 1 : 0, ws.compressed_rounds());
    add_row("est_cluster", "compressed", run.seconds, 0, peak_rss_kb(), 0,
            static_cast<double>(gz.adjacency_bytes()) /
                static_cast<double>(gz.num_arcs() ? gz.num_arcs() : 1),
            detail);
    if (!same_clustering(c, flat_c)) {
      std::fprintf(stderr, "FATAL: compressed est_cluster diverged from flat\n");
      return 1;
    }
  }

  // --- Phase 4: hopset build on the mapped graph -------------------------
  if (run_hopset) {
    HopsetParams params;
    params.seed = seed;
    HopsetResult h;
    const std::uint64_t before = rss_kb();
    const Run run = timed([&] { h = build_hopset(g, params); });
    const std::uint64_t after = rss_kb();
    char detail[96];
    std::snprintf(detail, sizeof detail, "edges=%zu levels=%" PRIu64,
                  h.edges.size(), h.levels);
    add_row("hopset", "flat", run.seconds, after - before, peak_rss_kb(), 0,
            4.0, detail);
  }

  table.print();
  const std::string path = report.save();
  if (path.empty()) return 1;
  std::printf("\nwrote %s\n", path.c_str());
  return 0;
}
