// DYNAMIC — batched edge updates with epoch-swapped incremental
// re-serving (PR 9).
//
// Workload model: a serving loop where query batches and update batches
// interleave. Each round
//   1. pins the current snapshot (a batch already in flight),
//   2. applies one random update batch to the organic engine (incremental
//      dirty-scale rebuild) AND to a forced-full twin (every scale from
//      scratch — the baseline the incremental path is measured against),
//   3. finishes the in-flight query batch on the pinned pre-update
//      snapshot (counted stale: a newer epoch existed by then), and
//   4. serves a fresh batch on the new snapshot.
//
// Reported per configuration:
//   * rebuild_ms / full_rebuild_ms — average incremental vs from-scratch
//     rebuild wall time for the SAME update stream;
//   * rebuild_speedup_vs_full — their ratio (higher is better; this is
//     the figure of merit for the dirty-scale tracking);
//   * dirty_scales / dirty_clusters vs totals — the structural version of
//     the same story, wall-clock-independent (meaningful even on 1 CPU);
//   * stale_rate — stale / served batches under this interleaving;
//   * warm_query_ms — steady-state per-batch query cost on the snapshot.
#include <algorithm>
#include <cmath>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace parsh;
  using namespace parsh::bench;
  Cli cli(argc, argv);
  const vid n = static_cast<vid>(cli.get_int("n", 1200));
  const int updates = static_cast<int>(cli.get_int("updates", 12));
  const int batch_edges = static_cast<int>(cli.get_int("batch", 8));
  const int query_pairs = static_cast<int>(cli.get_int("queries", 8));
  const std::uint64_t seed = cli.get_seed("seed", 1);
  const std::string wl = cli.get("workload", "er");
  // Log-uniform weights over a wide ratio: scales partition the weight
  // range, so a batch of mostly-heavy changes leaves the low scales clean
  // and the incremental rebuild has something to skip. (With narrow
  // uniform weights every scale covers every edge and dirty == total.)
  const double weight_ratio = cli.get_double("ratio", 10000.0);
  const Graph g = with_log_uniform_weights(workload(wl, n, seed), weight_ratio,
                                           seed + 17);
  print_header("DYNAMIC: batched updates, epoch-swapped incremental re-serving",
               g, wl.c_str());

  DynamicApproxShortestPaths::Params p;
  p.epsilon = 0.25;
  p.hopset.hopset.seed = seed;
  Timer t0;
  DynamicApproxShortestPaths organic(g, p);
  DynamicApproxShortestPaths full(g, p);
  full.set_force_full_rebuild(true);
  const double build_s = t0.seconds();
  std::printf("epoch 0 build: %.2fs x2 engines, %zu scales\n", build_s,
              organic.snapshot()->engine.num_scales());

  const Rng rng = Rng(seed).split(0xdb);
  SsspWorkspace ws;
  double rebuild_ms_sum = 0, full_ms_sum = 0, query_s_sum = 0;
  std::uint64_t dirty_scales = 0, total_scales = 0;
  std::uint64_t dirty_clusters = 0, total_clusters = 0;
  std::uint64_t stale = 0, served = 0, full_rebuild_rounds = 0;

  Table table({"round", "rebuild ms", "full ms", "dirty/total scales",
               "dirty/total clusters", "stale"});
  for (int round = 0; round < updates; ++round) {
    // The update batch: mostly inserts/reweights, some removals of edges
    // known present (sampled from the current snapshot). Each round's
    // batch is weight-coherent — drawn from one log-uniform band of the
    // weight range, modelling an update feed that touches one edge class
    // at a time (one road tier, one link speed). Heavy-band rounds leave
    // the light distance scales clean, which is exactly the structure the
    // dirty-scale tracking exists to exploit.
    const Rng r = rng.split(round);
    const int band = static_cast<int>(r.uniform_int(997, 4));
    const double band_lo = std::pow(weight_ratio, band / 4.0);
    const double band_hi = std::pow(weight_ratio, (band + 1) / 4.0);
    GraphDelta d;
    const auto snap_pinned = organic.snapshot();  // batch in flight
    std::vector<Edge> present;
    for (const Edge& e : snap_pinned->graph.undirected_edges()) {
      if (e.w >= band_lo && e.w <= band_hi) present.push_back(e);
    }
    for (int k = 0; k < batch_edges; ++k) {
      if (r.uniform_int(3 * k, 100) < 70 || present.empty()) {
        const double x = static_cast<double>(r.uniform_int(3 * k + 3, 1u << 20)) /
                         static_cast<double>(1u << 20);
        const weight_t w = std::max<weight_t>(
            1, std::floor(band_lo * std::pow(band_hi / band_lo, x)));
        d.insert.push_back({static_cast<vid>(r.uniform_int(3 * k + 1, n)),
                            static_cast<vid>(r.uniform_int(3 * k + 2, n)), w});
      } else {
        d.remove.push_back(present[r.uniform_int(3 * k + 1, present.size())]);
      }
    }

    const auto ra = organic.apply(d);
    const auto rb = full.apply(d);
    rebuild_ms_sum += ra.rebuild_ms;
    full_ms_sum += rb.rebuild_ms;
    dirty_scales += ra.hopset.dirty_scales;
    total_scales += ra.hopset.total_scales;
    dirty_clusters += ra.hopset.dirty_clusters;
    total_clusters += ra.hopset.total_clusters;
    if (ra.hopset.full_rebuild) ++full_rebuild_rounds;

    // The in-flight batch finishes on its pinned pre-update snapshot…
    std::vector<ApproxShortestPaths::QueryPair> batch;
    for (int q = 0; q < query_pairs; ++q) {
      batch.push_back({static_cast<vid>(r.uniform_int(100 + 2 * q, n)),
                       static_cast<vid>(r.uniform_int(101 + 2 * q, n))});
    }
    Timer tq;
    (void)snap_pinned->engine.query_batch(batch, ws);
    if (organic.note_batch_served(snap_pinned->epoch)) ++stale;
    ++served;
    // …and the next batch is served fresh from the new epoch.
    const auto snap_now = organic.snapshot();
    (void)snap_now->engine.query_batch(batch, ws);
    query_s_sum += tq.seconds();
    if (!organic.note_batch_served(snap_now->epoch)) ++served;
    table.row()
        .cell(static_cast<std::size_t>(round))
        .cell(ra.rebuild_ms, 2)
        .cell(rb.rebuild_ms, 2)
        .cell(std::to_string(ra.hopset.dirty_scales) + "/" +
              std::to_string(ra.hopset.total_scales))
        .cell(std::to_string(ra.hopset.dirty_clusters) + "/" +
              std::to_string(ra.hopset.total_clusters))
        .cell(std::to_string(stale));
  }
  table.print("update rounds, batch=" + std::to_string(batch_edges));

  const double u = updates > 0 ? static_cast<double>(updates) : 1;
  const double rebuild_ms = rebuild_ms_sum / u;
  const double full_ms = full_ms_sum / u;
  const double stale_rate =
      served > 0 ? static_cast<double>(stale) / static_cast<double>(served) : 0;
  const double warm_query_ms = query_s_sum / u * 1e3 / 2;
  std::printf("\nincremental rebuild: %.2f ms avg vs %.2f ms full "
              "(%.2fx), dirty %llu/%llu scales, %llu/%llu clusters, "
              "%llu/%d rounds forced full\n",
              rebuild_ms, full_ms, rebuild_ms > 0 ? full_ms / rebuild_ms : 0.0,
              static_cast<unsigned long long>(dirty_scales),
              static_cast<unsigned long long>(total_scales),
              static_cast<unsigned long long>(dirty_clusters),
              static_cast<unsigned long long>(total_clusters),
              static_cast<unsigned long long>(full_rebuild_rounds), updates);
  std::printf("staleness: %llu/%llu batches served a pre-update epoch "
              "(rate %.3f)\n",
              static_cast<unsigned long long>(stale),
              static_cast<unsigned long long>(served), stale_rate);
  std::printf("Reading guide: rebuild_speedup_vs_full > 1 is the dirty-scale\n"
              "tracking earning its keep; the dirty/total cluster ratio is the\n"
              "same win counted structurally (thread-count independent).\n");

  JsonReport report("dynamic");
  report.row()
      .field("workload", wl)
      .field("n", static_cast<std::uint64_t>(n))
      .field("m", static_cast<std::uint64_t>(g.num_edges()))
      .field("updates", static_cast<std::uint64_t>(updates))
      .field("batch_edges", static_cast<std::uint64_t>(batch_edges))
      .field("weight_ratio", weight_ratio)
      .field("queries", static_cast<std::uint64_t>(query_pairs))
      .field("seed", seed)
      .field("build_seconds", build_s)
      .field("rebuild_ms", rebuild_ms)
      .field("full_rebuild_ms", full_ms)
      .field("rebuild_speedup_vs_full", rebuild_ms > 0 ? full_ms / rebuild_ms : 0.0)
      .field("dirty_scales", dirty_scales)
      .field("total_scales", total_scales)
      .field("dirty_clusters", dirty_clusters)
      .field("total_clusters", total_clusters)
      .field("stale_rate", stale_rate)
      .field("warm_query_ms", warm_query_ms);
  const std::string path = report.save();
  if (!path.empty()) std::printf("wrote %s\n", path.c_str());
  return 0;
}
