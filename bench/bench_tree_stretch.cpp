// TREE — low-stretch spanning trees (the [AKPW95]/[CMP+14] lineage the
// paper's introduction builds on). Compares the EST-contraction AKPW tree
// against the MST baseline on topologies where tree stretch matters:
// average and maximum stretch, total weight, and construction cost. Not a
// paper table — an ablation substantiating the intro's claim that EST
// clustering "generates tree embeddings suitable for a variety of
// applications".
#include "bench_common.hpp"

#include "spanner/low_stretch_tree.hpp"

int main(int argc, char** argv) {
  using namespace parsh;
  using namespace parsh::bench;
  Cli cli(argc, argv);
  const std::uint64_t seed = cli.get_seed("seed", 1);
  const vid n = static_cast<vid>(cli.get_int("n", 1024));

  struct Workload {
    const char* name;
    Graph graph;
  };
  vid side = 1;
  while (side * side < n) ++side;
  std::vector<Workload> workloads;
  workloads.push_back({"torus", make_torus(side, side)});
  workloads.push_back({"grid(weighted)", with_log_uniform_weights(
                                              make_grid(side, side), 64.0, seed)});
  workloads.push_back(
      {"er(weighted)", with_log_uniform_weights(
                           ensure_connected(make_random_graph(n, 4 * n, seed)),
                           64.0, seed + 1)});
  workloads.push_back({"hypercube", make_hypercube(static_cast<int>(std::log2(n)))});

  JsonReport report("tree_stretch");
  Table t({"workload", "tree", "avg stretch", "max stretch", "total weight",
           "time(s)"});
  auto record = [&](const Workload& w, const char* algo, const TreeResult& tree,
                    double secs) {
    const TreeStretch s = tree_stretch(w.graph, tree.edges);
    double total = 0;
    for (const Edge& e : tree.edges) total += e.w;
    t.row().cell(w.name).cell(algo).cell(s.average, 2).cell(s.maximum, 1)
        .cell(total, 0).cell(secs, 3);
    report.row()
        .field("bench", "tree_stretch")
        .field("workload", w.name)
        .field("n", static_cast<std::uint64_t>(w.graph.num_vertices()))
        .field("m", static_cast<std::uint64_t>(w.graph.num_edges()))
        .field("algorithm", algo)
        .field("avg_stretch", s.average)
        .field("max_stretch", s.maximum)
        .field("total_weight", total)
        .field("seconds", secs)
        .field("iterations", tree.iterations);
  };
  for (const Workload& w : workloads) {
    {
      Timer timer;
      const TreeResult mst = minimum_spanning_tree(w.graph);
      record(w, "MST (Kruskal)", mst, timer.seconds());
    }
    {
      Timer timer;
      const TreeResult akpw = akpw_low_stretch_tree(w.graph, 2.0, seed);
      record(w, "AKPW via EST", akpw, timer.seconds());
    }
  }
  t.print("TREE: spanning tree stretch (intro lineage ablation)");
  std::printf("\nReading guide: MST minimizes total weight but ignores stretch;\n"
              "the EST-contraction tree trades a little weight for bounded-ish\n"
              "average stretch — the property low-stretch embeddings need.\n");
  const std::string path = report.save();
  if (path.empty()) return 1;
  std::printf("\nwrote %s\n", path.c_str());
  return 0;
}
