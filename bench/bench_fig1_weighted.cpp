// FIG1-W — Figure 1, weighted spanner table.
//
// Paper's rows (weighted graphs, U = weight ratio):
//   [ADD+93] greedy:      2k-1 stretch, size ~ n^{1+1/k},     O(m n^{1+1/k}) work
//   [BS07] Baswana-Sen:   2k-1 stretch, size O(k n^{1+1/k}),  O(km) work
//   EST weighted (new):   O(k) stretch, size O(n^{1+1/k} log k), O(m) work,
//                         depth O(k log* n log U)
//
// The decisive claim is the size column: the new construction's overhead
// over n^{1+1/k} is log k — *independent of U* — where naive bucketing
// would pay log U. We therefore sweep U and report sizes for each
// algorithm, plus the bucketing-only ablation (weighted spanner without
// the AKPW contraction = one unweighted spanner per bucket).
#include "bench_common.hpp"

namespace {

using namespace parsh;

/// Ablation: run Algorithm 2 independently per weight bucket (no
/// contraction) — the O(log U) overhead the paper's scheme avoids.
std::vector<Edge> bucketed_no_contraction(const Graph& g, double k, std::uint64_t seed) {
  std::vector<Edge> out;
  std::uint64_t level = 0;
  for (const auto& bucket : weight_buckets(g)) {
    if (bucket.empty()) continue;
    const Graph sub = Graph::from_edges(g.num_vertices(), std::vector<Edge>(bucket));
    const SpannerResult r = unweighted_spanner(sub.as_unweighted(), k, seed + level++);
    for (const Edge& e : r.edges) {
      // Map back to the true weight (the bucket's copy of the edge).
      for (const Edge& b : bucket) {
        if ((b.u == e.u && b.v == e.v) || (b.u == e.v && b.v == e.u)) {
          out.push_back(b);
          break;
        }
      }
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace parsh::bench;
  Cli cli(argc, argv);
  const vid n = static_cast<vid>(cli.get_int("n", 4000));
  const double k = cli.get_double("k", 3.0);
  const std::uint64_t seed = cli.get_seed("seed", 1);
  const std::string wl = cli.get("workload", "er");
  const bool run_greedy = cli.get_bool("greedy", n <= 6000);
  // Denser default than FIG1-U: the contraction's size advantage only
  // shows once individual weight buckets are denser than spanning trees.
  const auto deg = static_cast<eid>(cli.get_int("deg", 16));

  const Graph base = workload(wl, n, seed, deg);
  print_header("FIG1-W: weighted spanners (paper Figure 1, bottom block)", base,
               wl.c_str());
  const double law = std::pow(static_cast<double>(n), 1.0 + 1.0 / k);

  JsonReport report("fig1_weighted");
  Table table({"U", "algorithm", "size", "size/n^(1+1/k)", "stretch(sampled)",
               "time(s)", "rounds"});
  for (double ratio : {16.0, 256.0, 4096.0}) {
    const Graph g = with_log_uniform_weights(base, ratio, seed + 5);
    auto record = [&](const char* algo, const std::vector<Edge>& edges, const Run& r) {
      const double stretch = sampled_edge_stretch(g, edges, 32, seed);
      table.row()
          .cell(ratio, 0)
          .cell(algo)
          .cell(edges.size())
          .cell(static_cast<double>(edges.size()) / law, 2)
          .cell(stretch, 2)
          .cell(r.seconds, 3)
          .cell(std::to_string(r.counters.rounds));
      report.row()
          .field("bench", "fig1_weighted")
          .field("workload", wl)
          .field("n", static_cast<std::uint64_t>(g.num_vertices()))
          .field("m", static_cast<std::uint64_t>(g.num_edges()))
          .field("k", k)
          .field("weight_ratio", ratio)
          .field("algorithm", algo)
          .field("size", static_cast<std::uint64_t>(edges.size()))
          .field("size_over_law", static_cast<double>(edges.size()) / law)
          .field("stretch_sampled", stretch)
          .field("seconds", r.seconds)
          .field("rounds", r.counters.rounds);
    };
    if (run_greedy) {
      std::vector<Edge> edges;
      const Run r = timed([&] { edges = greedy_spanner(g, k); });
      record("greedy [ADD+93]", edges, r);
    }
    {
      std::vector<Edge> edges;
      const Run r =
          timed([&] { edges = baswana_sen_spanner(g, static_cast<int>(k), seed); });
      record("Baswana-Sen [BS07]", edges, r);
    }
    {
      std::vector<Edge> edges;
      const Run r = timed([&] { edges = bucketed_no_contraction(g, k, seed); });
      record("bucketed, no contraction (ablation)", edges, r);
    }
    {
      SpannerResult sp;
      const Run r = timed([&] { sp = weighted_spanner(g, k, seed); });
      record("EST weighted (new)", sp.edges, r);
    }
  }
  table.print("weighted spanners, k=" + std::to_string(static_cast<int>(k)));
  std::printf("\nReading guide: Theorem 3.3's point is the EST size column growing\n"
              "with log k only — flat as U sweeps 16 -> 4096 — while the\n"
              "no-contraction ablation grows with log U.\n");
  const std::string path = report.save();
  if (path.empty()) return 1;
  std::printf("\nwrote %s\n", path.c_str());
  return 0;
}
