// PRIM — google-benchmark microbenches for the substrate primitives the
// paper's work/depth accounting charges: scan, pack, sort, BFS, weighted
// BFS, EST clustering throughput.
#include <benchmark/benchmark.h>

#include "core/parsh.hpp"

namespace {

using namespace parsh;

void BM_ExclusiveScan(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<std::uint64_t> base(n, 3);
  for (auto _ : state) {
    auto v = base;
    benchmark::DoNotOptimize(exclusive_scan_inplace(v));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
}
BENCHMARK(BM_ExclusiveScan)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

void BM_PackIndices(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(pack_indices(n, [](std::size_t i) { return i % 3 == 0; }));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
}
BENCHMARK(BM_PackIndices)->Arg(1 << 12)->Arg(1 << 18);

void BM_ParallelSort(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  std::vector<std::uint64_t> base(n);
  for (std::size_t i = 0; i < n; ++i) base[i] = rng.bits(i);
  for (auto _ : state) {
    auto v = base;
    parallel_sort(v);
    benchmark::DoNotOptimize(v.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
}
BENCHMARK(BM_ParallelSort)->Arg(1 << 14)->Arg(1 << 18);

void BM_CsrBuild(benchmark::State& state) {
  const auto n = static_cast<vid>(state.range(0));
  const Graph g = make_random_graph(n, static_cast<eid>(n) * 8, 3);
  auto edges = g.undirected_edges();
  for (auto _ : state) {
    benchmark::DoNotOptimize(Graph::from_edges(n, edges));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(edges.size()) * state.iterations());
}
BENCHMARK(BM_CsrBuild)->Arg(1 << 12)->Arg(1 << 15);

void BM_Bfs(benchmark::State& state) {
  const auto n = static_cast<vid>(state.range(0));
  const Graph g = ensure_connected(make_random_graph(n, static_cast<eid>(n) * 8, 3));
  for (auto _ : state) {
    benchmark::DoNotOptimize(bfs(g, 0));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(g.num_arcs()) * state.iterations());
}
BENCHMARK(BM_Bfs)->Arg(1 << 12)->Arg(1 << 15);

void BM_WeightedBfs(benchmark::State& state) {
  const auto n = static_cast<vid>(state.range(0));
  const Graph g = with_uniform_weights(
      ensure_connected(make_random_graph(n, static_cast<eid>(n) * 8, 3)), 1, 16, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(weighted_bfs(g, 0));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(g.num_arcs()) * state.iterations());
}
BENCHMARK(BM_WeightedBfs)->Arg(1 << 12)->Arg(1 << 15);

void BM_Dijkstra(benchmark::State& state) {
  const auto n = static_cast<vid>(state.range(0));
  const Graph g = with_uniform_weights(
      ensure_connected(make_random_graph(n, static_cast<eid>(n) * 8, 3)), 1, 16, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dijkstra(g, 0));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(g.num_arcs()) * state.iterations());
}
BENCHMARK(BM_Dijkstra)->Arg(1 << 12)->Arg(1 << 15);

void BM_EstCluster(benchmark::State& state) {
  const auto n = static_cast<vid>(state.range(0));
  const Graph g = ensure_connected(make_random_graph(n, static_cast<eid>(n) * 6, 3));
  for (auto _ : state) {
    benchmark::DoNotOptimize(est_cluster(g, 0.2, 5));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(g.num_arcs()) * state.iterations());
}
BENCHMARK(BM_EstCluster)->Arg(1 << 12)->Arg(1 << 15);

void BM_UnweightedSpanner(benchmark::State& state) {
  const auto n = static_cast<vid>(state.range(0));
  const Graph g = ensure_connected(make_random_graph(n, static_cast<eid>(n) * 6, 3));
  for (auto _ : state) {
    benchmark::DoNotOptimize(unweighted_spanner(g, 3.0, 5));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(g.num_arcs()) * state.iterations());
}
BENCHMARK(BM_UnweightedSpanner)->Arg(1 << 12)->Arg(1 << 15);

void BM_HopsetBuild(benchmark::State& state) {
  const auto n = static_cast<vid>(state.range(0));
  const Graph g = make_path_with_chords(n, n / 50, 3);
  HopsetParams p;
  p.gamma2 = 0.5;
  for (auto _ : state) {
    benchmark::DoNotOptimize(build_hopset(g, p));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(g.num_arcs()) * state.iterations());
}
BENCHMARK(BM_HopsetBuild)->Arg(1 << 12)->Arg(1 << 14);

}  // namespace

BENCHMARK_MAIN();
