// Shared helpers for the table/figure benches: workload construction,
// instrumented runs reporting wall time + PRAM work/round counters, and a
// machine-readable JSON report so the perf trajectory across PRs is
// trackable by tooling (BENCH_<name>.json next to the binary).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "core/parsh.hpp"

namespace parsh::bench {

/// Wall time, work and rounds of one instrumented call.
struct Run {
  double seconds = 0;
  wd::Counters counters;
};

template <typename F>
Run timed(F f) {
  wd::Region region;
  Timer t;
  f();
  Run r;
  r.seconds = t.seconds();
  r.counters = region.delta();
  return r;
}

/// Apply a `--scale` factor to a workload's base vertex count. Benches
/// expose the knob so one flag moves a whole sweep between smoke size
/// (CI, --scale 0.025) and the recorded size (default 1.0): the scaling
/// bench's defaults put the recorded sweep at >= 200k vertices / >= 1M
/// edges so the parallel round path is actually exercised (tiny graphs
/// drain almost entirely through the adaptive sequential fast path).
inline vid scaled_n(vid base, double scale) {
  if (!(scale > 0)) return base;
  const double n = static_cast<double>(base) * scale;
  return n < 2 ? 2 : static_cast<vid>(n);
}

/// Named workloads shared by the benches. `avg_deg` tunes density for
/// the random families (ignored by the structured ones).
inline Graph workload(const std::string& name, vid n, std::uint64_t seed,
                      eid avg_deg = 8) {
  if (name == "er") {
    return ensure_connected(make_random_graph(n, static_cast<eid>(n) * avg_deg / 2, seed));
  }
  if (name == "grid") {
    vid side = 1;
    while (side * side < n) ++side;
    return make_grid(side, side);
  }
  if (name == "road") {
    // Road-network proxy: grid topology with integer segment lengths.
    vid side = 1;
    while (side * side < n) ++side;
    return with_uniform_weights(make_grid(side, side), 1, 8, seed + 1);
  }
  if (name == "rmat") {
    return ensure_connected(make_rmat(n, static_cast<eid>(n) * 6, seed));
  }
  if (name == "rmat-heavy") {
    // Heavy-tailed quadrant mix: degree mass on a few hubs.
    return ensure_connected(make_rmat_heavy(n, static_cast<eid>(n) * 6, seed));
  }
  if (name == "hub") {
    // Extreme frontier skew: 8 hubs carry nearly every edge — the
    // workload the work-stealing rounds exist for.
    return ensure_connected(make_hubs(n, 8, seed));
  }
  if (name == "path") {
    return make_path(n);  // maximal-diameter workload: where hopsets matter
  }
  if (name == "pathchords") {
    return make_path_with_chords(n, n / 50, seed);
  }
  std::fprintf(stderr, "unknown workload '%s'\n", name.c_str());
  std::exit(2);
}

/// Load a graph from disk for the `--graph <file>` flag, dispatching on
/// extension: ".pcsr" memory-maps the binary CSR (zero-copy, O(1) warm),
/// ".gr" parses DIMACS shortest-path, anything else parses the text
/// edge-list format of graph/io.hpp. Setting PARSH_FORCE_COMPRESSED=1
/// re-encodes a flat adjacency into the delta-varint form after loading,
/// so any bench taking --graph can be driven down the compressed decode
/// path without shipping a second file.
inline Graph load_graph_file(const std::string& path) {
  auto ends_with = [&](const char* suffix) {
    const std::size_t len = std::char_traits<char>::length(suffix);
    return path.size() >= len && path.compare(path.size() - len, len, suffix) == 0;
  };
  Graph g;
  if (ends_with(".pcsr")) {
    g = load_pcsr_file(path);
  } else if (ends_with(".gr")) {
    g = read_dimacs_file(path);
  } else {
    g = read_edge_list_file(path);
  }
  const char* force = std::getenv("PARSH_FORCE_COMPRESSED");
  if (force && force[0] == '1' && !g.compressed()) g = g.compress_adjacency();
  return g;
}

/// Flat JSON report: one object per recorded row, written as an array to
/// BENCH_<name>.json. Strings are quoted, numbers are not; keys are
/// expected to be plain identifiers (no escaping is attempted).
class JsonReport {
 public:
  explicit JsonReport(std::string name) : name_(std::move(name)) {}

  class Row {
   public:
    Row& field(const std::string& key, const std::string& value) {
      return raw_(key, "\"" + value + "\"");
    }
    Row& field(const std::string& key, const char* value) {
      return field(key, std::string(value));
    }
    Row& field(const std::string& key, double value) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.9g", value);
      return raw_(key, buf);
    }
    Row& field(const std::string& key, std::uint64_t value) {
      return raw_(key, std::to_string(value));
    }
    Row& field(const std::string& key, int value) {
      return raw_(key, std::to_string(value));
    }

   private:
    friend class JsonReport;
    Row& raw_(const std::string& key, const std::string& json_value) {
      fields_.emplace_back(key, json_value);
      return *this;
    }
    std::vector<std::pair<std::string, std::string>> fields_;
  };

  Row& row() { return rows_.emplace_back(); }

  /// Write BENCH_<name>.json in the working directory; returns the path,
  /// or an empty string if the file could not be written.
  std::string save() const {
    const std::string path = "BENCH_" + name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "JsonReport: cannot write %s\n", path.c_str());
      return {};
    }
    std::fputs("[\n", f);
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      std::fputs("  {", f);
      const auto& fields = rows_[i].fields_;
      for (std::size_t j = 0; j < fields.size(); ++j) {
        std::fprintf(f, "\"%s\": %s%s", fields[j].first.c_str(),
                     fields[j].second.c_str(), j + 1 < fields.size() ? ", " : "");
      }
      std::fprintf(f, "}%s\n", i + 1 < rows_.size() ? "," : "");
    }
    std::fputs("]\n", f);
    std::fclose(f);
    return path;
  }

 private:
  std::string name_;
  std::vector<Row> rows_;
};

inline void print_header(const char* title, const Graph& g, const char* workload_name) {
  std::printf("\n%s\n  workload=%s n=%u m=%llu  (work/rounds are PRAM-style counters;\n"
              "  wall time is 1-thread unless OMP_NUM_THREADS says otherwise)\n",
              title, workload_name, g.num_vertices(),
              static_cast<unsigned long long>(g.num_edges()));
}

}  // namespace parsh::bench
