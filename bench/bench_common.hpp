// Shared helpers for the table/figure benches: workload construction and
// instrumented runs reporting wall time + PRAM work/round counters.
#pragma once

#include <cstdio>
#include <string>

#include "core/parsh.hpp"

namespace parsh::bench {

/// Wall time, work and rounds of one instrumented call.
struct Run {
  double seconds = 0;
  wd::Counters counters;
};

template <typename F>
Run timed(F f) {
  wd::Region region;
  Timer t;
  f();
  Run r;
  r.seconds = t.seconds();
  r.counters = region.delta();
  return r;
}

/// Named workloads shared by the benches. `avg_deg` tunes density for
/// the random families (ignored by the structured ones).
inline Graph workload(const std::string& name, vid n, std::uint64_t seed,
                      eid avg_deg = 8) {
  if (name == "er") {
    return ensure_connected(make_random_graph(n, static_cast<eid>(n) * avg_deg / 2, seed));
  }
  if (name == "grid") {
    vid side = 1;
    while (side * side < n) ++side;
    return make_grid(side, side);
  }
  if (name == "rmat") {
    return ensure_connected(make_rmat(n, static_cast<eid>(n) * 6, seed));
  }
  if (name == "path") {
    return make_path(n);  // maximal-diameter workload: where hopsets matter
  }
  if (name == "pathchords") {
    return make_path_with_chords(n, n / 50, seed);
  }
  std::fprintf(stderr, "unknown workload '%s'\n", name.c_str());
  std::exit(2);
}

inline void print_header(const char* title, const Graph& g, const char* workload_name) {
  std::printf("\n%s\n  workload=%s n=%u m=%llu  (work/rounds are PRAM-style counters;\n"
              "  wall time is 1-thread unless OMP_NUM_THREADS says otherwise)\n",
              title, workload_name, g.num_vertices(),
              static_cast<unsigned long long>(g.num_edges()));
}

}  // namespace parsh::bench
