// FIG1-U — Figure 1, unweighted spanner table.
//
// Paper's rows (unweighted graphs):
//   [ADD+93]-style greedy:  stretch 2k-1, sequential, O(m n^{1+1/k}) work
//   [BS07] Baswana-Sen:     stretch 2k-1, size O(k n^{1+1/k}), O(km) work
//   EST spanner (new):      stretch O(k),  size O(n^{1+1/k}),  O(m) work
//
// We regenerate the comparison empirically: for each k, build all three on
// the same graph and report size, size normalised by n^{1+1/k}, sampled
// stretch, wall time, and the work/round counters. The paper's claims map
// to: EST size ratio ~constant in k (vs k-growing for BS), EST work flat
// in k, greedy smallest but slowest.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace parsh;
  using namespace parsh::bench;
  Cli cli(argc, argv);
  const vid n = static_cast<vid>(cli.get_int("n", 8000));
  const std::uint64_t seed = cli.get_seed("seed", 1);
  const std::string wl = cli.get("workload", "er");
  const bool run_greedy = cli.get_bool("greedy", n <= 12000);
  const Graph g = workload(wl, n, seed);
  print_header("FIG1-U: unweighted spanners (paper Figure 1, top block)", g, wl.c_str());

  JsonReport report("fig1_unweighted");
  Table table({"k", "algorithm", "size", "size/n^(1+1/k)", "stretch(sampled)",
               "time(s)", "work", "rounds"});
  auto record = [&](double k, double law, const char* algo,
                    const std::vector<Edge>& edges, const Run& r, bool parallel) {
    const double stretch = sampled_edge_stretch(g, edges, 48, seed);
    Table& row = table.row()
                     .cell(k, 0)
                     .cell(algo)
                     .cell(edges.size())
                     .cell(static_cast<double>(edges.size()) / law, 2)
                     .cell(stretch, 2)
                     .cell(r.seconds, 3);
    if (parallel) {
      row.cell(std::to_string(r.counters.work)).cell(std::to_string(r.counters.rounds));
    } else {
      row.cell("- (sequential)").cell("-");
    }
    JsonReport::Row& jrow = report.row()
                                .field("bench", "fig1_unweighted")
                                .field("workload", wl)
                                .field("n", static_cast<std::uint64_t>(g.num_vertices()))
                                .field("m", static_cast<std::uint64_t>(g.num_edges()))
                                .field("k", k)
                                .field("algorithm", algo)
                                .field("size", static_cast<std::uint64_t>(edges.size()))
                                .field("size_over_law", static_cast<double>(edges.size()) / law)
                                .field("stretch_sampled", stretch)
                                .field("seconds", r.seconds);
    // Sequential baselines have no PRAM counters; omit the fields rather
    // than record a misleading 0 in the cross-PR diff data.
    if (parallel) {
      jrow.field("work", r.counters.work).field("rounds", r.counters.rounds);
    }
  };
  for (double k : {2.0, 3.0, 4.0, 6.0, 8.0}) {
    const double law = std::pow(static_cast<double>(n), 1.0 + 1.0 / k);
    if (run_greedy) {
      std::vector<Edge> edges;
      const Run r = timed([&] { edges = greedy_spanner(g, k); });
      record(k, law, "greedy [ADD+93]", edges, r, false);
    }
    {
      std::vector<Edge> edges;
      const Run r =
          timed([&] { edges = baswana_sen_spanner(g, static_cast<int>(k), seed); });
      record(k, law, "Baswana-Sen [BS07]", edges, r, false);
    }
    {
      SpannerResult sp;
      const Run r = timed([&] { sp = unweighted_spanner(g, k, seed); });
      record(k, law, "EST spanner (new)", sp.edges, r, true);
    }
  }
  table.print("unweighted spanners");
  std::printf("\nReading guide: the paper's Figure 1 asserts (i) EST size/n^(1+1/k)\n"
              "stays ~constant while Baswana-Sen's grows ~k, (ii) EST stretch is a\n"
              "constant multiple of k, (iii) EST work is O(m), independent of k.\n");
  const std::string path = report.save();
  if (path.empty()) return 1;
  std::printf("\nwrote %s\n", path.c_str());
  return 0;
}
