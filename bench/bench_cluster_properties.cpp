// LEM21 / COR23 / COR31 — the probabilistic laws of the EST clustering,
// measured: cluster radius vs beta^{-1} log n (Lemma 2.1), edge cut
// probability vs beta * w (Corollary 2.3), unit-ball cluster intersections
// vs n^{1/k} (Corollary 3.1). These are the knobs every downstream proof
// turns on; the benches show each law's measured constant.
#include <array>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace parsh;
  using namespace parsh::bench;
  Cli cli(argc, argv);
  const vid side = static_cast<vid>(cli.get_int("side", 60));
  const int trials = static_cast<int>(cli.get_int("trials", 8));
  const std::uint64_t seed = cli.get_seed("seed", 1);
  const Graph g = make_torus(side, side);
  const vid n = g.num_vertices();
  print_header("EST clustering property laws (Lemma 2.1, Cor 2.3, Cor 3.1)", g, "torus");

  // --- Lemma 2.1: max tree radius <= k beta^{-1} log n whp -------------
  {
    Table t({"beta", "max radius (mean)", "beta^-1 log n", "ratio", "clusters (mean)",
             "rounds (mean)"});
    for (double beta : {0.05, 0.1, 0.2, 0.4, 0.8}) {
      double rad = 0, clusters = 0, rounds = 0;
      for (int i = 0; i < trials; ++i) {
        const Clustering c = est_cluster(g, beta, seed + i);
        rad += max_cluster_radius(c);
        clusters += c.num_clusters;
        rounds += static_cast<double>(c.rounds);
      }
      rad /= trials;
      clusters /= trials;
      rounds /= trials;
      const double law = std::log(static_cast<double>(n)) / beta;
      t.row()
          .cell(beta, 2)
          .cell(rad, 1)
          .cell(law, 1)
          .cell(rad / law, 2)
          .cell(clusters, 0)
          .cell(rounds, 0);
    }
    t.print("LEM21: cluster radius law");
    std::printf("ratio column should stay <= k_conf (~1) across beta.\n\n");
  }

  // --- Corollary 2.3: P[edge cut] <= 1 - exp(-beta w) ------------------
  {
    const Graph gw = with_uniform_weights(g, 1, 8, seed + 3);
    Table t({"beta", "w", "measured P[cut]", "1-exp(-beta w)", "beta*w"});
    for (double beta : {0.02, 0.05}) {
      std::array<double, 9> cut{}, total{};
      for (int i = 0; i < trials; ++i) {
        const Clustering c = est_cluster(gw, beta, seed + 100 + i);
        for (const Edge& e : gw.undirected_edges()) {
          const auto w = static_cast<std::size_t>(e.w);
          total[w] += 1;
          if (c.cluster_of[e.u] != c.cluster_of[e.v]) cut[w] += 1;
        }
      }
      for (std::size_t w = 1; w <= 8; w += 1) {
        if (total[w] == 0) continue;
        t.row()
            .cell(beta, 2)
            .cell(static_cast<std::size_t>(w))
            .cell(cut[w] / total[w], 3)
            .cell(1.0 - std::exp(-beta * static_cast<double>(w)), 3)
            .cell(beta * static_cast<double>(w), 3);
      }
    }
    t.print("COR23: edge cut probability law");
    std::printf("measured column tracks (from below) the 1-exp(-beta w) bound.\n\n");
  }

  // --- Corollary 3.1: E[#clusters meeting B(v,1)] <= n^{1/k} -----------
  {
    Table t({"k", "beta=ln(n)/2k", "mean ball clusters", "n^{1/k}", "ratio"});
    std::vector<vid> queries;
    for (vid v = 0; v < n; v += n / 64) queries.push_back(v);
    for (double k : {2.0, 3.0, 4.0, 6.0}) {
      const double beta = std::log(static_cast<double>(n)) / (2.0 * k);
      double mean = 0;
      int cnt = 0;
      for (int i = 0; i < trials / 2 + 1; ++i) {
        const Clustering c = est_cluster(g, beta, seed + 200 + i);
        for (vid x : ball_cluster_counts(g, c, queries, 1.0)) {
          mean += x;
          ++cnt;
        }
      }
      mean /= cnt;
      const double law = std::pow(static_cast<double>(n), 1.0 / k);
      t.row().cell(k, 0).cell(beta, 3).cell(mean, 2).cell(law, 2).cell(mean / law, 2);
    }
    t.print("COR31: unit-ball cluster intersections");
    std::printf("ratio <= 1 is the corollary; it drives the spanner size bound.\n");
  }
  return 0;
}
