// ABL — ablations over the hopset design knobs DESIGN.md calls out:
// delta (rho exponent), gamma2 (top-level beta), epsilon (per-level
// distortion) and n_final. Each sweep reports hopset size, build cost and
// measured hop counts, exposing the size/hops/rounds trade-off surface
// behind Theorem 4.4's parameter choices (delta=1.1, gamma2~1, etc.).
#include "bench_common.hpp"

namespace {

using namespace parsh;
using namespace parsh::bench;

void sweep(const Graph& g, const char* name, const std::vector<HopsetParams>& params,
           const std::vector<std::string>& labels, double eps, vid pairs,
           std::uint64_t seed) {
  Table t({name, "edges", "star", "clique", "levels", "build(s)", "rounds",
           "hops p50", "hops max"});
  for (std::size_t i = 0; i < params.size(); ++i) {
    HopsetResult hr;
    const Run r = timed([&] { hr = build_hopset(g, params[i]); });
    const auto ms = measure_hopset(g, hr.edges, eps, pairs,
                                   4ull * g.num_vertices(), seed + 77);
    std::vector<double> hops;
    for (const auto& m : ms) hops.push_back(static_cast<double>(m.hops_with_set));
    const Summary s = summarize(hops);
    t.row()
        .cell(labels[i])
        .cell(hr.edges.size())
        .cell(std::to_string(hr.star_edges))
        .cell(std::to_string(hr.clique_edges))
        .cell(std::to_string(hr.levels))
        .cell(r.seconds, 3)
        .cell(std::to_string(r.counters.rounds))
        .cell(s.p50, 0)
        .cell(s.max, 0);
  }
  t.print(std::string("ABL: sweep over ") + name);
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace parsh;
  using namespace parsh::bench;
  Cli cli(argc, argv);
  const vid n = static_cast<vid>(cli.get_int("n", 4000));
  const double eps = cli.get_double("eps", 0.5);
  const vid pairs = static_cast<vid>(cli.get_int("pairs", 6));
  const std::uint64_t seed = cli.get_seed("seed", 1);
  const Graph g = workload("path", n, seed);
  print_header("ABL: hopset parameter ablations (Theorem 4.4 knobs)", g, "path");

  HopsetParams base;
  base.epsilon = eps;
  base.gamma2 = 0.5;
  base.seed = seed;

  {
    std::vector<HopsetParams> ps;
    std::vector<std::string> labels;
    for (double delta : {1.05, 1.1, 1.5, 2.0}) {
      HopsetParams p = base;
      p.delta = delta;
      ps.push_back(p);
      labels.push_back("delta=" + std::to_string(delta).substr(0, 4));
    }
    sweep(g, "delta", ps, labels, eps, pairs, seed);
  }
  {
    std::vector<HopsetParams> ps;
    std::vector<std::string> labels;
    for (double gamma2 : {0.3, 0.5, 0.7, 0.9}) {
      HopsetParams p = base;
      p.gamma2 = gamma2;
      ps.push_back(p);
      labels.push_back("gamma2=" + std::to_string(gamma2).substr(0, 3));
    }
    sweep(g, "gamma2", ps, labels, eps, pairs, seed);
  }
  {
    std::vector<HopsetParams> ps;
    std::vector<std::string> labels;
    for (double e : {0.125, 0.25, 0.5, 1.0}) {
      HopsetParams p = base;
      p.epsilon = e;
      ps.push_back(p);
      labels.push_back("eps=" + std::to_string(e).substr(0, 5));
    }
    sweep(g, "epsilon", ps, labels, eps, pairs, seed);
  }
  {
    std::vector<HopsetParams> ps;
    std::vector<std::string> labels;
    for (vid nf : {16u, 64u, 256u}) {
      HopsetParams p = base;
      p.n_final_override = nf;
      ps.push_back(p);
      labels.push_back("n_final=" + std::to_string(nf));
    }
    sweep(g, "n_final", ps, labels, eps, pairs, seed);
  }
  std::printf("Reading guide: gamma2 trades top-cluster radius (hops) against\n"
              "recursion depth; delta speeds the size shrink (fewer clique edges,\n"
              "more residual hops); eps scales the growth factor between levels.\n");
  return 0;
}
