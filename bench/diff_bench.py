#!/usr/bin/env python3
"""Cross-PR bench diff: compare two sets of BENCH_*.json reports.

Usage:
    diff_bench.py BASELINE_DIR CURRENT_DIR [--threshold 0.15]

Every bench binary writes BENCH_<name>.json as a flat array of row
objects (see bench/bench_common.hpp). Rows are matched across the two
directories by their configuration fields (all string fields plus the
workload-shape numbers: n, m, k, threads, eps, ...) and two metric kinds
are compared:

* time fields ("seconds" / "_ms" metrics): lower is better — a ratio
  above 1 + threshold is a regression;
* speedup fields ("speedup" in the name, e.g. speedup_vs_1t): HIGHER is
  better — a ratio below 1 - threshold is a regression. This is what
  guards the persistent-team round engine's whole point: multi-threaded
  runs must not quietly fall back below the 1-thread wall time;
* rate fields ("_rate" suffix, e.g. BENCH_server.json's shed_rate):
  fractions in [0, 1] where lower is better. Compared by absolute
  difference rather than ratio, since healthy baselines are often
  exactly 0 (below the saturation knee) and any ratio would divide by
  zero — an increase of more than `threshold` percentage points is a
  regression.

The report ends with a 1-thread-vs-4-thread table built from the current
reports (every row pair differing only in `threads`), so the step summary
shows the scaling picture at a glance.

Exit code 0 when no metric regressed by more than the threshold,
2 when at least one did (callers are expected to fail-soft: CI surfaces
the summary without failing the build, since shared-runner wall times are
noisy). Missing baselines — first run, renamed benches — are reported and
never fail.
"""

import argparse
import json
import os
import sys

# Fields that identify a row (its configuration), as opposed to measuring
# it. String fields are always part of the identity.
KEY_FIELDS = {
    "bench", "workload", "algorithm", "n", "m", "k", "threads", "eps",
    "beta", "weight_ratio", "queries", "pairs", "seed", "updates",
    "batch_edges", "updaters", "checkpoint_every",
}


def is_time_field(name: str) -> bool:
    return ("seconds" in name or name.endswith("_ms") or "_ms_" in name) \
        and "speedup" not in name


def is_speedup_field(name: str) -> bool:
    return "speedup" in name


def is_rate_field(name: str) -> bool:
    return name.endswith("_rate")


def row_key(row: dict):
    parts = []
    for key in sorted(row):
        if key in KEY_FIELDS or isinstance(row[key], str):
            parts.append((key, row[key]))
    return tuple(parts)


def load_reports(directory: str) -> dict:
    """{file name: {row key: row}} for every BENCH_*.json under directory."""
    reports = {}
    for root, _dirs, files in os.walk(directory):
        for name in sorted(files):
            if not (name.startswith("BENCH_") and name.endswith(".json")):
                continue
            path = os.path.join(root, name)
            try:
                with open(path) as f:
                    rows = json.load(f)
            except (OSError, json.JSONDecodeError) as err:
                print(f"warning: skipping unreadable {path}: {err}")
                continue
            table = reports.setdefault(name, {})
            for row in rows:
                table[row_key(row)] = row
    return reports


def fmt_key(key) -> str:
    return " ".join(f"{k}={v}" for k, v in key)


def thread_scaling_table(reports: dict, low: int = 1, high: int = 4) -> list:
    """Lines of a `low`t-vs-`high`t wall-time table from one report set.

    Rows are paired by their identity key minus `threads`; pairs that have
    both thread counts contribute one line with the measured speedup.
    """
    lines = []
    for name, rows in sorted(reports.items()):
        by_config = {}
        for key, row in rows.items():
            threads = row.get("threads")
            if not isinstance(threads, int) or "seconds" not in row:
                continue
            config = tuple((k, v) for k, v in key if k != "threads")
            by_config.setdefault(config, {})[threads] = row
        for config, by_threads in sorted(by_config.items()):
            if low not in by_threads or high not in by_threads:
                continue
            t_low = by_threads[low]["seconds"]
            t_high = by_threads[high]["seconds"]
            if not (isinstance(t_low, (int, float)) and t_low > 0 and
                    isinstance(t_high, (int, float)) and t_high > 0):
                continue
            speedup = t_low / t_high
            marker = "" if speedup >= 1.0 else "  <-- slower than 1 thread"
            lines.append(f"  {name} [{fmt_key(config)}] "
                         f"{low}t={t_low:.4g}s {high}t={t_high:.4g}s "
                         f"speedup={speedup:.2f}{marker}")
    return lines


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="relative slowdown that counts as a regression")
    args = parser.parse_args()

    base = load_reports(args.baseline)
    cur = load_reports(args.current)
    if not base:
        print(f"no baseline BENCH_*.json under {args.baseline} — "
              f"recording seed: this run's reports become the baseline "
              f"for the next diff")
        return 0
    if not cur:
        print(f"no current BENCH_*.json under {args.current} — nothing to diff")
        return 0

    regressions = []
    improvements = []
    compared = 0
    for name, cur_rows in sorted(cur.items()):
        base_rows = base.get(name)
        if base_rows is None:
            print(f"{name}: new report (no baseline)")
            continue
        for key, row in cur_rows.items():
            old = base_rows.get(key)
            if old is None:
                continue
            for field, value in row.items():
                time_metric = is_time_field(field)
                speedup_metric = is_speedup_field(field)
                rate_metric = is_rate_field(field)
                if not (time_metric or speedup_metric or rate_metric):
                    continue
                old_value = old.get(field)
                if not isinstance(value, (int, float)):
                    continue
                if rate_metric:
                    # Absolute comparison: a 0 -> 0.3 shed-rate jump is
                    # exactly the regression this exists to catch, and
                    # has no finite ratio.
                    if not isinstance(old_value, (int, float)):
                        continue
                    compared += 1
                    delta = value - old_value
                    line = (f"{name} [{fmt_key(key)}] {field}: "
                            f"{old_value:.4f} -> {value:.4f} "
                            f"({delta * 100:+.1f}pp)")
                    if delta > args.threshold:
                        regressions.append(line)
                    elif delta < -args.threshold:
                        improvements.append(line)
                    continue
                if not isinstance(old_value, (int, float)) or old_value <= 0:
                    continue
                compared += 1
                ratio = value / old_value
                line = (f"{name} [{fmt_key(key)}] {field}: "
                        f"{old_value:.6g} -> {value:.6g} "
                        f"({(ratio - 1) * 100:+.1f}%)")
                # Time: lower is better. Speedup: higher is better.
                worse = ratio > 1.0 + args.threshold if time_metric \
                    else ratio < 1.0 - args.threshold
                better = ratio < 1.0 - args.threshold if time_metric \
                    else ratio > 1.0 + args.threshold
                if worse:
                    regressions.append(line)
                elif better:
                    improvements.append(line)

    print(f"compared {compared} time/speedup metrics "
          f"(threshold {args.threshold:.0%})")
    if improvements:
        print(f"\n{len(improvements)} improvement(s):")
        for line in improvements:
            print(f"  + {line}")
    status = 0
    if regressions:
        print(f"\n{len(regressions)} regression(s) beyond {args.threshold:.0%}:")
        for line in regressions:
            print(f"  - {line}")
        status = 2
    else:
        print("no regressions beyond threshold")

    scaling = thread_scaling_table(cur)
    if scaling:
        print("\n1-thread vs 4-thread wall time (current run):")
        for line in scaling:
            print(line)
    return status


if __name__ == "__main__":
    sys.exit(main())
