#!/usr/bin/env python3
"""Cross-PR bench diff: compare two sets of BENCH_*.json reports.

Usage:
    diff_bench.py BASELINE_DIR CURRENT_DIR [--threshold 0.15]

Every bench binary writes BENCH_<name>.json as a flat array of row
objects (see bench/bench_common.hpp). Rows are matched across the two
directories by their configuration fields (all string fields plus the
workload-shape numbers: n, m, k, threads, eps, ...) and their wall-time
fields ("seconds" / "_ms" metrics) are compared.

Exit code 0 when no time metric regressed by more than the threshold,
2 when at least one did (callers are expected to fail-soft: CI surfaces
the summary without failing the build, since shared-runner wall times are
noisy). Missing baselines — first run, renamed benches — are reported and
never fail.
"""

import argparse
import json
import os
import sys

# Fields that identify a row (its configuration), as opposed to measuring
# it. String fields are always part of the identity.
KEY_FIELDS = {
    "bench", "workload", "algorithm", "n", "m", "k", "threads", "eps",
    "beta", "weight_ratio", "queries", "pairs", "seed",
}


def is_time_field(name: str) -> bool:
    return "seconds" in name or name.endswith("_ms") or "_ms_" in name


def row_key(row: dict):
    parts = []
    for key in sorted(row):
        if key in KEY_FIELDS or isinstance(row[key], str):
            parts.append((key, row[key]))
    return tuple(parts)


def load_reports(directory: str) -> dict:
    """{file name: {row key: row}} for every BENCH_*.json under directory."""
    reports = {}
    for root, _dirs, files in os.walk(directory):
        for name in sorted(files):
            if not (name.startswith("BENCH_") and name.endswith(".json")):
                continue
            path = os.path.join(root, name)
            try:
                with open(path) as f:
                    rows = json.load(f)
            except (OSError, json.JSONDecodeError) as err:
                print(f"warning: skipping unreadable {path}: {err}")
                continue
            table = reports.setdefault(name, {})
            for row in rows:
                table[row_key(row)] = row
    return reports


def fmt_key(key) -> str:
    return " ".join(f"{k}={v}" for k, v in key)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="relative slowdown that counts as a regression")
    args = parser.parse_args()

    base = load_reports(args.baseline)
    cur = load_reports(args.current)
    if not base:
        print(f"no baseline BENCH_*.json under {args.baseline} — nothing to diff")
        return 0
    if not cur:
        print(f"no current BENCH_*.json under {args.current} — nothing to diff")
        return 0

    regressions = []
    improvements = []
    compared = 0
    for name, cur_rows in sorted(cur.items()):
        base_rows = base.get(name)
        if base_rows is None:
            print(f"{name}: new report (no baseline)")
            continue
        for key, row in cur_rows.items():
            old = base_rows.get(key)
            if old is None:
                continue
            for field, value in row.items():
                if not is_time_field(field):
                    continue
                old_value = old.get(field)
                if not isinstance(value, (int, float)):
                    continue
                if not isinstance(old_value, (int, float)) or old_value <= 0:
                    continue
                compared += 1
                ratio = value / old_value
                line = (f"{name} [{fmt_key(key)}] {field}: "
                        f"{old_value:.6g} -> {value:.6g} "
                        f"({(ratio - 1) * 100:+.1f}%)")
                if ratio > 1.0 + args.threshold:
                    regressions.append(line)
                elif ratio < 1.0 - args.threshold:
                    improvements.append(line)

    print(f"compared {compared} time metrics "
          f"(threshold {args.threshold:.0%})")
    if improvements:
        print(f"\n{len(improvements)} improvement(s):")
        for line in improvements:
            print(f"  + {line}")
    if regressions:
        print(f"\n{len(regressions)} regression(s) beyond {args.threshold:.0%}:")
        for line in regressions:
            print(f"  - {line}")
        return 2
    print("no regressions beyond threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
