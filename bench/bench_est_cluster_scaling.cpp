// EST-SCALE — thread-scaling sweep for the EST-clustering round engine.
//
// The tentpole claim of the bucketed-frontier rewrite is that est_cluster's
// per-round work (priority writes, winner settlement, frontier expansion,
// staging compaction) parallelizes. This bench runs est_cluster over a
// thread sweep on RMAT / grid / road workloads, reports wall time and the
// PRAM counters, and appends every row to BENCH_est_cluster.json so the
// perf trajectory across PRs is trackable. The sequential super-source
// Dijkstra oracle is timed alongside as the no-engine reference point.
//
// The default sweep is sized so the persistent-team round path is actually
// exercised (>= 200k vertices, >= 1M edges on rmat): small graphs drain
// almost entirely through the adaptive sequential round fast path and
// measure nothing but its overhead. `--scale` shrinks/grows the whole
// sweep (CI smoke runs use --scale 0.025); each row also records the
// per-round frontier-edge histogram (p50/p90/max), the sequential/team
// round split and the push/pull direction split, so the adaptive and
// direction thresholds stay tunable from recorded data. First-thread
// rows add push_seconds — the same workload with force_push pinned,
// timed against an equally warm workspace — so the direction
// heuristic's 1-thread win is a recorded metric, not a claim.
//
//   ./bench_est_cluster_scaling --scale 1 --threads 1,2,4,8 --reps 3
#include "bench_common.hpp"

#include <algorithm>
#include <sstream>

namespace {

/// Percentile of a sorted vector (nearest-rank); 0 for empty input.
std::size_t percentile(const std::vector<std::size_t>& sorted, double p) {
  if (sorted.empty()) return 0;
  const auto rank = static_cast<std::size_t>(p * static_cast<double>(sorted.size() - 1));
  return sorted[rank];
}

}  // namespace

int main(int argc, char** argv) {
  using namespace parsh;
  using namespace parsh::bench;
  Cli cli(argc, argv);
  const double scale = cli.get_double("scale", 1.0);
  // ~1.2M edges on rmat at scale 1; --n overrides the scaled default.
  const vid n = static_cast<vid>(cli.get_int("n", scaled_n(200000, scale)));
  const std::uint64_t seed = cli.get_seed("seed", 1);
  const int reps = static_cast<int>(cli.get_int("reps", 3));
  const double beta = cli.get_double("beta", 0.4);
  // --graph <file> replaces the generated sweep with one on-disk graph
  // (.pcsr / .gr / edge list; see load_graph_file).
  const std::string graph_path = cli.get("graph", "");

  std::vector<int> threads;
  {
    std::stringstream ss(cli.get("threads", "1,2,4,8"));
    for (std::string tok; std::getline(ss, tok, ',');) {
      try {
        const int t = std::stoi(tok);
        if (t < 1) throw std::invalid_argument(tok);
        threads.push_back(t);
      } catch (const std::exception&) {
        std::fprintf(stderr, "bad --threads entry '%s' (want positive ints, e.g. 1,2,4)\n",
                     tok.c_str());
        return 2;
      }
    }
    if (threads.empty()) threads.push_back(1);
  }
#ifndef PARSH_HAVE_OPENMP
  std::printf("(built without OpenMP: thread counts beyond 1 run sequentially)\n");
  threads.assign(1, 1);
#endif

  JsonReport report("est_cluster");
  Table table({"workload", "n", "m", "threads", "time(s)", "push(s)", "speedup",
               "oracle(s)", "work", "rounds", "seq/team", "pull-r/edges",
               "fe-p50/p90/max", "clusters"});
  // "hub" and "rmat-heavy" are the skewed frontiers the degree-aware
  // work-stealing rounds target: without edge-range splitting their hub
  // expansions serialize behind one worker.
  std::vector<std::string> workloads = {"rmat", "grid", "road", "rmat-heavy", "hub"};
  if (!graph_path.empty()) workloads = {graph_path};
  for (const std::string& wl : workloads) {
    const Graph g = graph_path.empty() ? workload(wl, n, seed)
                                       : load_graph_file(graph_path);
    print_header("EST-SCALE: est_cluster thread scaling", g, wl.c_str());
    // Sequential reference point: the super-source Dijkstra oracle. It
    // indexes arcs directly (target()/weight()), which needs flat
    // adjacency, so a compressed input gets a one-time flat twin here;
    // the timed engine runs below keep decoding the compressed graph.
    const Graph oracle_g = g.has_flat_adjacency() ? g : g.decompress_adjacency();
    double oracle_s = 1e300;
    for (int r = 0; r < reps; ++r) {
      oracle_s =
          std::min(oracle_s, timed([&] { est_cluster_reference(oracle_g, beta, seed); }).seconds);
    }
    // One untimed instrumented run per workload: the per-round
    // frontier-edge histogram and the sequential/team round split are
    // deterministic in the input and thread-count-invariant, so a single
    // measurement outside the timing sweep covers every row.
    EstClusterWorkspace ws;
    std::vector<std::size_t> round_edges;
    ws.record_round_edges(&round_edges);
    est_cluster(g, beta, seed, ws);
    ws.record_round_edges(nullptr);
    // Push-pinned companion workspace, warmed the same way: both timing
    // loops below run against warm workspaces, so the organic-vs-push gap
    // measures the direction heuristic, not allocation noise.
    EstClusterWorkspace push_ws;
    push_ws.force_push(true);
    est_cluster(g, beta, seed, push_ws);
    std::sort(round_edges.begin(), round_edges.end());
    const std::size_t fe_p50 = percentile(round_edges, 0.50);
    const std::size_t fe_p90 = percentile(round_edges, 0.90);
    const std::size_t fe_max = round_edges.empty() ? 0 : round_edges.back();
    char seq_team[48];
    std::snprintf(seq_team, sizeof(seq_team), "%llu/%llu",
                  static_cast<unsigned long long>(ws.sequential_rounds()),
                  static_cast<unsigned long long>(ws.team_rounds()));
    char fe_hist[64];
    std::snprintf(fe_hist, sizeof(fe_hist), "%zu/%zu/%zu", fe_p50, fe_p90, fe_max);
    // Direction split of the instrumented run: the hysteresis decisions
    // read only round totals and m, so these are thread-count-invariant
    // like the histogram above.
    const std::uint64_t pull_rounds = ws.pull_rounds();
    const std::uint64_t pull_edges = ws.pull_edges_scanned();
    char pull_split[48];
    std::snprintf(pull_split, sizeof(pull_split), "%llu/%llu",
                  static_cast<unsigned long long>(pull_rounds),
                  static_cast<unsigned long long>(pull_edges));
    double t1 = 0;  // 1-thread engine time, denominator of the speedup column
    for (int t : threads) {
#ifdef PARSH_HAVE_OPENMP
      omp_set_num_threads(t);
#endif
      Clustering c;
      Run best;
      best.seconds = 1e300;
      for (int r = 0; r < reps; ++r) {
        const Run run = timed([&] { c = est_cluster(g, beta, seed, ws); });
        if (run.seconds < best.seconds) best = run;
      }
      if (t == threads.front()) t1 = best.seconds;
      // On the first (1-thread) row, also time the push-pinned workspace:
      // the organic-vs-push gap is the direction heuristic's measured win,
      // independent of thread count (the pull scan's edge savings are
      // per-worker, not a parallelism effect).
      double push_s = 0;
      if (t == threads.front()) {
        push_s = 1e300;
        for (int r = 0; r < reps; ++r) {
          push_s = std::min(
              push_s, timed([&] { est_cluster(g, beta, seed, push_ws); }).seconds);
        }
      }
      table.row()
          .cell(wl)
          .cell(static_cast<std::size_t>(g.num_vertices()))
          .cell(static_cast<std::size_t>(g.num_edges()))
          .cell(t)
          .cell(best.seconds, 4)
          .cell(push_s, 4)
          .cell(t1 / best.seconds, 2)
          .cell(oracle_s, 4)
          .cell(best.counters.work)
          .cell(best.counters.rounds)
          .cell(seq_team)
          .cell(pull_split)
          .cell(fe_hist)
          .cell(static_cast<std::size_t>(c.num_clusters));
      auto& json_row = report.row()
          .field("bench", "est_cluster_scaling")
          .field("workload", wl)
          .field("n", static_cast<std::uint64_t>(g.num_vertices()))
          .field("m", static_cast<std::uint64_t>(g.num_edges()))
          .field("threads", t)
          .field("beta", beta)
          .field("scale", scale)
          .field("seconds", best.seconds)
          .field("speedup_vs_1t", t1 / best.seconds)
          .field("oracle_seconds", oracle_s)
          .field("work", best.counters.work)
          .field("rounds", best.counters.rounds)
          .field("sequential_rounds", ws.sequential_rounds())
          .field("team_rounds", ws.team_rounds())
          .field("pull_rounds", pull_rounds)
          .field("pull_edges_scanned", pull_edges)
          .field("frontier_edges_p50", static_cast<std::uint64_t>(fe_p50))
          .field("frontier_edges_p90", static_cast<std::uint64_t>(fe_p90))
          .field("frontier_edges_max", static_cast<std::uint64_t>(fe_max))
          .field("clusters", static_cast<std::uint64_t>(c.num_clusters));
      // Only first-thread rows carry the push-pinned reference time;
      // diff_bench.py tolerates the field's absence elsewhere.
      if (t == threads.front()) json_row.field("push_seconds", push_s);
    }
  }
  table.print();
  const std::string path = report.save();
  if (path.empty()) return 1;
  std::printf("\nwrote %s\n", path.c_str());
  return 0;
}
