// EST-SCALE — thread-scaling sweep for the EST-clustering round engine.
//
// The tentpole claim of the bucketed-frontier rewrite is that est_cluster's
// per-round work (priority writes, winner settlement, frontier expansion,
// staging compaction) parallelizes. This bench runs est_cluster over a
// thread sweep on RMAT / grid / road workloads, reports wall time and the
// PRAM counters, and appends every row to BENCH_est_cluster.json so the
// perf trajectory across PRs is trackable. The sequential super-source
// Dijkstra oracle is timed alongside as the no-engine reference point.
//
//   ./bench_est_cluster_scaling --n 170000 --threads 1,2,4,8 --reps 3
#include "bench_common.hpp"

#include <algorithm>
#include <sstream>

int main(int argc, char** argv) {
  using namespace parsh;
  using namespace parsh::bench;
  Cli cli(argc, argv);
  const vid n = static_cast<vid>(cli.get_int("n", 170000));  // ~1M edges on rmat
  const std::uint64_t seed = cli.get_seed("seed", 1);
  const int reps = static_cast<int>(cli.get_int("reps", 3));
  const double beta = cli.get_double("beta", 0.4);

  std::vector<int> threads;
  {
    std::stringstream ss(cli.get("threads", "1,2,4,8"));
    for (std::string tok; std::getline(ss, tok, ',');) {
      try {
        const int t = std::stoi(tok);
        if (t < 1) throw std::invalid_argument(tok);
        threads.push_back(t);
      } catch (const std::exception&) {
        std::fprintf(stderr, "bad --threads entry '%s' (want positive ints, e.g. 1,2,4)\n",
                     tok.c_str());
        return 2;
      }
    }
    if (threads.empty()) threads.push_back(1);
  }
#ifndef PARSH_HAVE_OPENMP
  std::printf("(built without OpenMP: thread counts beyond 1 run sequentially)\n");
  threads.assign(1, 1);
#endif

  JsonReport report("est_cluster");
  Table table({"workload", "n", "m", "threads", "time(s)", "speedup", "oracle(s)",
               "work", "rounds", "clusters"});
  // "hub" and "rmat-heavy" are the skewed frontiers the degree-aware
  // work-stealing rounds target: without edge-range splitting their hub
  // expansions serialize behind one worker.
  for (const std::string wl : {"rmat", "grid", "road", "rmat-heavy", "hub"}) {
    const Graph g = workload(wl, n, seed);
    print_header("EST-SCALE: est_cluster thread scaling", g, wl.c_str());
    // Sequential reference point: the super-source Dijkstra oracle.
    double oracle_s = 1e300;
    for (int r = 0; r < reps; ++r) {
      oracle_s = std::min(oracle_s, timed([&] { est_cluster_reference(g, beta, seed); }).seconds);
    }
    double t1 = 0;  // 1-thread engine time, denominator of the speedup column
    for (int t : threads) {
#ifdef PARSH_HAVE_OPENMP
      omp_set_num_threads(t);
#endif
      Clustering c;
      Run best;
      best.seconds = 1e300;
      for (int r = 0; r < reps; ++r) {
        const Run run = timed([&] { c = est_cluster(g, beta, seed); });
        if (run.seconds < best.seconds) best = run;
      }
      if (t == threads.front()) t1 = best.seconds;
      table.row()
          .cell(wl)
          .cell(static_cast<std::size_t>(g.num_vertices()))
          .cell(static_cast<std::size_t>(g.num_edges()))
          .cell(t)
          .cell(best.seconds, 4)
          .cell(t1 / best.seconds, 2)
          .cell(oracle_s, 4)
          .cell(best.counters.work)
          .cell(best.counters.rounds)
          .cell(static_cast<std::size_t>(c.num_clusters));
      report.row()
          .field("bench", "est_cluster_scaling")
          .field("workload", wl)
          .field("n", static_cast<std::uint64_t>(g.num_vertices()))
          .field("m", static_cast<std::uint64_t>(g.num_edges()))
          .field("threads", t)
          .field("beta", beta)
          .field("seconds", best.seconds)
          .field("speedup_vs_1t", t1 / best.seconds)
          .field("oracle_seconds", oracle_s)
          .field("work", best.counters.work)
          .field("rounds", best.counters.rounds)
          .field("clusters", static_cast<std::uint64_t>(c.num_clusters));
    }
  }
  table.print();
  const std::string path = report.save();
  if (path.empty()) return 1;
  std::printf("\nwrote %s\n", path.c_str());
  return 0;
}
