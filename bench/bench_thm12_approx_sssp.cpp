// THM12 — Theorem 1.2 end-to-end: (1+eps)-approximate s-t distances.
//
// The paper's claim: after O(m poly log n) preprocessing, each query takes
// O(m eps^{-1-alpha}) work at depth ~ n^{gamma2} — i.e. queries become
// round-bounded instead of diameter-bounded. We compare, per query:
//   - exact sequential Dijkstra (the baseline the speedup is against),
//   - plain hop-limited search (depth = hop diameter, the no-hopset cost),
//   - the hopset engine (rounds bounded by the Lemma 4.2 budget),
// and report approximation ratios, rounds and relaxation counts.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace parsh;
  using namespace parsh::bench;
  Cli cli(argc, argv);
  const vid n = static_cast<vid>(cli.get_int("n", 4000));
  const double eps = cli.get_double("eps", 0.25);
  const int queries = static_cast<int>(cli.get_int("queries", 8));
  const std::uint64_t seed = cli.get_seed("seed", 1);
  const std::string wl = cli.get("workload", "path");
  Graph g = workload(wl, n, seed);
  if (cli.get_bool("weighted", true)) {
    g = with_uniform_weights(g, 1, 8, seed + 9);
  }
  print_header("THM12: (1+eps)-approximate shortest paths end to end", g, wl.c_str());

  ApproxShortestPaths::Params p;
  p.epsilon = eps;
  p.hopset.hopset.gamma2 = 0.5;
  p.hopset.hopset.seed = seed;
  Timer prep;
  const ApproxShortestPaths engine(g, p);
  const double prep_s = prep.seconds();
  std::printf("preprocessing: %.2fs, %llu hopset edges over %zu scales, "
              "%llu clustering rounds\n",
              prep_s, static_cast<unsigned long long>(engine.hopset().total_hopset_edges),
              engine.hopset().scales.size(),
              static_cast<unsigned long long>(engine.preprocessing_rounds()));

  Table table({"s", "t", "exact", "approx", "ratio", "engine rounds",
               "plain hop rounds", "dijkstra(s)", "query(s)"});
  Rng rng(seed ^ 0x77ULL);
  double worst_ratio = 1.0;
  for (int q = 0; q < queries; ++q) {
    const vid s = static_cast<vid>(rng.uniform_int(2 * q, n));
    const vid t = static_cast<vid>(rng.uniform_int(2 * q + 1, n));
    if (s == t) continue;
    Timer td;
    const weight_t exact = st_distance(g, s, t);
    const double dij_s = td.seconds();
    if (exact == kInfWeight) continue;
    Timer tq;
    const auto qr = engine.query(s, t);
    const double query_s = tq.seconds();
    // Plain search: rounds to reach the same approximation with no hopset.
    const std::uint64_t plain = hops_to_approx(g, s, t, exact, eps, 4ull * n);
    const double ratio = qr.estimate / exact;
    worst_ratio = std::max(worst_ratio, ratio);
    table.row()
        .cell(static_cast<std::size_t>(s))
        .cell(static_cast<std::size_t>(t))
        .cell(exact, 0)
        .cell(qr.estimate, 0)
        .cell(ratio, 3)
        .cell(std::to_string(qr.rounds))
        .cell(std::to_string(plain))
        .cell(dij_s, 4)
        .cell(query_s, 4);
  }
  table.print("queries, eps=" + std::to_string(eps));
  std::printf("\nworst ratio observed: %.3f (target 1+%.2f plus rounding slack)\n",
              worst_ratio, eps);
  std::printf("Reading guide: 'engine rounds' should sit well below 'plain hop\n"
              "rounds' on this high-diameter workload — that gap is Theorem 1.2's\n"
              "depth win; ratios must stay within the (1+eps)-ish envelope.\n");

  // Server path: the same requests as one batch through a reusable
  // traversal workspace — cold (buffers growing) vs warm (zero workspace
  // allocations). The warm figure is the steady-state per-query cost a
  // long-lived distance server pays.
  std::vector<ApproxShortestPaths::QueryPair> batch;
  Rng brng(seed ^ 0x77ULL);
  for (int q = 0; q < queries; ++q) {
    const vid s = static_cast<vid>(brng.uniform_int(2 * q, n));
    const vid t = static_cast<vid>(brng.uniform_int(2 * q + 1, n));
    if (s != t) batch.push_back({s, t});
  }
  SsspWorkspace ws;
  Timer tc;
  const auto cold_answers = engine.query_batch(batch, ws);
  const double cold_s = tc.seconds();
  const std::uint64_t cold_allocs = ws.alloc_events();
  Timer tw;
  const auto warm_answers = engine.query_batch(batch, ws);
  const double warm_s = tw.seconds();
  const std::uint64_t warm_allocs = ws.alloc_events() - cold_allocs;
  (void)cold_answers;
  (void)warm_answers;
  const double per_query = batch.empty() ? 0.0 : warm_s / static_cast<double>(batch.size());
  std::printf("\nquery_batch (%zu requests, one workspace): cold %.2f ms "
              "(%llu allocs), warm %.2f ms (%llu allocs, %.4f ms/query)\n",
              batch.size(), cold_s * 1e3,
              static_cast<unsigned long long>(cold_allocs), warm_s * 1e3,
              static_cast<unsigned long long>(warm_allocs), per_query * 1e3);

  JsonReport report("thm12_approx_sssp");
  report.row()
      .field("workload", wl)
      .field("n", static_cast<std::uint64_t>(n))
      .field("m", static_cast<std::uint64_t>(g.num_edges()))
      .field("eps", eps)
      .field("queries", static_cast<std::uint64_t>(batch.size()))
      .field("prep_seconds", prep_s)
      .field("worst_ratio", worst_ratio)
      .field("batch_cold_seconds", cold_s)
      .field("batch_warm_seconds", warm_s)
      .field("warm_ms_per_query", per_query * 1e3)
      .field("cold_workspace_allocs", cold_allocs)
      .field("warm_workspace_allocs", warm_allocs);
  const std::string path = report.save();
  if (!path.empty()) std::printf("wrote %s\n", path.c_str());
  return 0;
}
