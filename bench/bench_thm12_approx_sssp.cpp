// THM12 — Theorem 1.2 end-to-end: (1+eps)-approximate s-t distances.
//
// The paper's claim: after O(m poly log n) preprocessing, each query takes
// O(m eps^{-1-alpha}) work at depth ~ n^{gamma2} — i.e. queries become
// round-bounded instead of diameter-bounded. We compare, per query:
//   - exact sequential Dijkstra (the baseline the speedup is against),
//   - plain hop-limited search (depth = hop diameter, the no-hopset cost),
//   - the hopset engine (rounds bounded by the Lemma 4.2 budget),
// and report approximation ratios, rounds and relaxation counts.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace parsh;
  using namespace parsh::bench;
  Cli cli(argc, argv);
  const vid n = static_cast<vid>(cli.get_int("n", 4000));
  const double eps = cli.get_double("eps", 0.25);
  const int queries = static_cast<int>(cli.get_int("queries", 8));
  const std::uint64_t seed = cli.get_seed("seed", 1);
  const std::string wl = cli.get("workload", "path");
  Graph g = workload(wl, n, seed);
  if (cli.get_bool("weighted", true)) {
    g = with_uniform_weights(g, 1, 8, seed + 9);
  }
  print_header("THM12: (1+eps)-approximate shortest paths end to end", g, wl.c_str());

  ApproxShortestPaths::Params p;
  p.epsilon = eps;
  p.hopset.hopset.gamma2 = 0.5;
  p.hopset.hopset.seed = seed;
  Timer prep;
  const ApproxShortestPaths engine(g, p);
  const double prep_s = prep.seconds();
  std::printf("preprocessing: %.2fs, %llu hopset edges over %zu scales, "
              "%llu clustering rounds\n",
              prep_s, static_cast<unsigned long long>(engine.hopset().total_hopset_edges),
              engine.hopset().scales.size(),
              static_cast<unsigned long long>(engine.preprocessing_rounds()));

  Table table({"s", "t", "exact", "approx", "ratio", "engine rounds",
               "plain hop rounds", "dijkstra(s)", "query(s)"});
  Rng rng(seed ^ 0x77ULL);
  double worst_ratio = 1.0;
  for (int q = 0; q < queries; ++q) {
    const vid s = static_cast<vid>(rng.uniform_int(2 * q, n));
    const vid t = static_cast<vid>(rng.uniform_int(2 * q + 1, n));
    if (s == t) continue;
    Timer td;
    const weight_t exact = st_distance(g, s, t);
    const double dij_s = td.seconds();
    if (exact == kInfWeight) continue;
    Timer tq;
    const auto qr = engine.query(s, t);
    const double query_s = tq.seconds();
    // Plain search: rounds to reach the same approximation with no hopset.
    const std::uint64_t plain = hops_to_approx(g, s, t, exact, eps, 4ull * n);
    const double ratio = qr.estimate / exact;
    worst_ratio = std::max(worst_ratio, ratio);
    table.row()
        .cell(static_cast<std::size_t>(s))
        .cell(static_cast<std::size_t>(t))
        .cell(exact, 0)
        .cell(qr.estimate, 0)
        .cell(ratio, 3)
        .cell(std::to_string(qr.rounds))
        .cell(std::to_string(plain))
        .cell(dij_s, 4)
        .cell(query_s, 4);
  }
  table.print("queries, eps=" + std::to_string(eps));
  std::printf("\nworst ratio observed: %.3f (target 1+%.2f plus rounding slack)\n",
              worst_ratio, eps);
  std::printf("Reading guide: 'engine rounds' should sit well below 'plain hop\n"
              "rounds' on this high-diameter workload — that gap is Theorem 1.2's\n"
              "depth win; ratios must stay within the (1+eps)-ish envelope.\n");
  return 0;
}
