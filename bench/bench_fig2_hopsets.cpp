// FIG2 — Figure 2, hopset construction table (+ Lemma 4.2 measurements).
//
// Paper's rows:
//   [KS97/SS99]: hop count O(n^{1/2}), size O(n), work O(m n^{0.5}), exact
//   [Coh00]:     polylog hops, n^{1+alpha} size, O~(m n^alpha) work
//   new:         hop count O(n^{(4+a)/(4+2a)}), size O(n), work O(m log^{3+a} n)
//
// We regenerate the comparison on a high-diameter workload: for the KS97
// sampled-clique baseline and the EST hopset (Algorithm 4) report hopset
// size, construction time/work/rounds, and the *measured* hops needed to
// reach a (1+eps)-approximation for random pairs, with "no hopset" as the
// reference row. Cohen's algorithm predates practical implementations and
// its polylog machinery is out of scope — the paper's empirical claim
// (linear size at sub-sqrt hop counts with near-linear work) is carried
// by the two implemented rows.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace parsh;
  using namespace parsh::bench;
  Cli cli(argc, argv);
  const vid n = static_cast<vid>(cli.get_int("n", 6000));
  const double eps = cli.get_double("eps", 0.5);
  const vid pairs = static_cast<vid>(cli.get_int("pairs", 10));
  const std::uint64_t seed = cli.get_seed("seed", 1);
  const std::string wl = cli.get("workload", "path");
  const Graph g = workload(wl, n, seed);
  print_header("FIG2: hopset constructions (paper Figure 2)", g, wl.c_str());

  const std::uint64_t h_cap = 4 * static_cast<std::uint64_t>(n);

  JsonReport report("fig2_hopsets");
  Table table({"algorithm", "hopset size", "build(s)", "build work", "build rounds",
               "hops p50", "hops p90", "hops max"});

  auto add_row = [&](const char* name, const std::vector<Edge>& edges, const Run& run) {
    const auto ms = measure_hopset(g, edges, eps, pairs, h_cap, seed + 3);
    std::vector<double> hops;
    for (const auto& m : ms) hops.push_back(static_cast<double>(m.hops_with_set));
    const Summary s = summarize(hops);
    table.row()
        .cell(name)
        .cell(edges.size())
        .cell(run.seconds, 3)
        .cell(std::to_string(run.counters.work))
        .cell(std::to_string(run.counters.rounds))
        .cell(s.p50, 0)
        .cell(s.p90, 0)
        .cell(s.max, 0);
    report.row()
        .field("bench", "fig2_hopsets")
        .field("workload", wl)
        .field("n", static_cast<std::uint64_t>(g.num_vertices()))
        .field("m", static_cast<std::uint64_t>(g.num_edges()))
        .field("eps", eps)
        .field("algorithm", name)
        .field("hopset_size", static_cast<std::uint64_t>(edges.size()))
        .field("build_seconds", run.seconds)
        .field("build_work", run.counters.work)
        .field("build_rounds", run.counters.rounds)
        .field("hops_p50", s.p50)
        .field("hops_p90", s.p90)
        .field("hops_max", s.max);
  };

  // Row 0: no hopset (plain graph).
  add_row("none (plain graph)", {}, Run{});

  // Row 1: KS97-style sampled clique, sqrt(n) samples.
  {
    Ks97Result ks;
    const Run r = timed([&] { ks = ks97_hopset(g, 0, seed); });
    add_row("sampled clique [KS97]", ks.edges, r);
  }

  // Row 2: Cohen-flavored hierarchical landmarks — polylog-ish hops at
  // superlinear size/work (the [Coh00] row; simplified per DESIGN.md).
  // Levels sized so the top radius reaches the diameter.
  {
    CohenLiteParams cp;
    cp.seed = seed;
    cp.levels = 5;
    cp.decay = 0.25;
    cp.base_radius = 4.0;
    cp.radius_growth = 4.0;
    CohenLiteResult cr;
    const Run r = timed([&] { cr = cohen_lite_hopset(g, cp); });
    add_row("hierarchical landmarks [Coh00-lite]", cr.edges, r);
  }

  // Row 3: EST hopset (Algorithm 4), laptop-scale parameters. gamma2=0.6
  // puts the top-level cluster radius near n^0.6; with n in the thousands
  // the growth factor k_conf * eps^{-1} * log n still leaves 2-3
  // recursion levels, enough for the star+clique shortcuts to bite.
  HopsetParams hp;
  hp.epsilon = eps;
  hp.gamma2 = cli.get_double("gamma2", 0.6);
  hp.seed = seed;
  HopsetResult est;
  {
    const Run r = timed([&] { est = build_hopset(g, hp); });
    add_row("EST hopset (new, Alg 4)", est.edges, r);
  }
  table.print("hopset comparison, eps=" + std::to_string(eps));

  // Lemma 4.2: measured hops vs the analytic bound, per pair.
  {
    const auto ms = measure_hopset(g, est.edges, eps, pairs, h_cap, seed + 3);
    Table lemma({"pair", "dist", "hops plain", "hops with E'", "Lemma4.2 bound",
                 "within bound"});
    std::size_t within = 0;
    for (const auto& m : ms) {
      const double bound = 4.0 * hopset_hop_bound(n, hp, m.true_dist);
      const bool ok = static_cast<double>(m.hops_with_set) <= bound;
      within += ok ? 1 : 0;
      lemma.row()
          .cell(std::to_string(m.s) + "-" + std::to_string(m.t))
          .cell(m.true_dist, 0)
          .cell(std::to_string(m.hops_plain))
          .cell(std::to_string(m.hops_with_set))
          .cell(bound, 0)
          .cell(ok ? "yes" : "no");
    }
    lemma.print("LEM42: hop counts vs Lemma 4.2 (4x expected-value bound)");
    std::printf("\n%zu/%zu pairs within the bound — Definition 2.4 asks >= 1/2.\n",
                within, ms.size());
  }
  std::printf("\nReading guide: the new row should sit near KS97's hop counts at a\n"
              "fraction of its build work (one Dijkstra per sqrt(n) samples vs\n"
              "O(m polylog) clustering), with hopset size O(n) for both.\n");
  const std::string path = report.save();
  if (path.empty()) return 1;
  std::printf("\nwrote %s\n", path.c_str());
  return 0;
}
