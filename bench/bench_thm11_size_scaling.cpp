// THM11 — Theorem 1.1 size laws.
//
// Sweeps n and fits the growth exponent of the spanner size:
//   unweighted: expected size O(n^{1+1/k})      (Lemma 3.2)
//   weighted:   expected size O(n^{1+1/k} log k) (Theorem 3.3)
// The fitted log-log slope should approach 1 + 1/k.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace parsh;
  using namespace parsh::bench;
  Cli cli(argc, argv);
  const std::uint64_t seed = cli.get_seed("seed", 1);
  const vid n_max = static_cast<vid>(cli.get_int("nmax", 32000));

  std::vector<vid> ns;
  for (vid n = 2000; n <= n_max; n *= 2) ns.push_back(n);

  std::printf("\nTHM11: spanner size scaling (Theorem 1.1)\n");
  for (double k : {2.0, 3.0, 5.0}) {
    Table table({"n", "m", "unweighted size", "/n^(1+1/k)", "weighted size",
                 "/n^(1+1/k)"});
    std::vector<double> xs, ys_u, ys_w;
    for (vid n : ns) {
      const Graph g = ensure_connected(make_random_graph(n, static_cast<eid>(n) * 5, seed));
      const Graph gw = with_log_uniform_weights(g, 256.0, seed + 2);
      double su = 0, sw = 0;
      const int trials = 2;
      for (int t = 0; t < trials; ++t) {
        su += static_cast<double>(unweighted_spanner(g, k, seed + t).edges.size());
        sw += static_cast<double>(weighted_spanner(gw, k, seed + t).edges.size());
      }
      su /= trials;
      sw /= trials;
      const double law = std::pow(static_cast<double>(n), 1.0 + 1.0 / k);
      table.row()
          .cell(static_cast<std::size_t>(n))
          .cell(static_cast<std::size_t>(g.num_edges()))
          .cell(su, 0)
          .cell(su / law, 2)
          .cell(sw, 0)
          .cell(sw / law, 2);
      xs.push_back(static_cast<double>(n));
      ys_u.push_back(su);
      ys_w.push_back(sw);
    }
    table.print("k=" + std::to_string(static_cast<int>(k)));
    const LinearFit fu = fit_power_law(xs, ys_u);
    const LinearFit fw = fit_power_law(xs, ys_w);
    std::printf("fitted exponent: unweighted %.3f, weighted %.3f "
                "(theory: <= %.3f; r2 %.3f / %.3f)\n\n",
                fu.slope, fw.slope, 1.0 + 1.0 / k, fu.r2, fw.r2);
  }
  std::printf("Reading guide: size/n^(1+1/k) columns should be ~flat in n, and the\n"
              "fitted exponents at or below 1 + 1/k (denser graphs saturate lower).\n");
  return 0;
}
