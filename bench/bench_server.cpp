// SERVER — open-loop saturation bench for the hardened query service.
//
// Preprocesses once, measures the engine's warm ms/query (the same
// figure BENCH_thm12_approx_sssp.json records, here feeding the
// admission queue's drain estimator), then sweeps offered load across
// multiples of the measured capacity. Each level runs an open-loop load
// generator: client threads issue requests on a fixed arrival schedule
// — never waiting for the previous answer to be "ready" to send the
// next — so queueing delay is charged to latency instead of silently
// throttling the generator (no coordinated omission).
//
// The shape to look for: below the knee (offered < capacity) everything
// is served at full fidelity; beyond it, admission control sheds with
// retry-after hints, execution deadlines cut batches into partial
// answers, and the degraded tier absorbs what is admitted — while p99
// stays bounded instead of tracking unbounded queue growth.
//
//   ./bench_server [--n 2000] [--workload er|grid|road|rmat|path|pathchords]
//                  [--eps 0.25] [--deadline_ms 25] [--pairs 16]
//                  [--clients 8] [--duration 1.0] [--seed 1]
//                  [--faults false] [--scale 1.0]
//
// With --faults true the deterministic FaultInjector is armed (torn and
// slow-loris writes, worker stalls, queue spikes, connection drops) and
// the clients must recover via retry/reconnect. The bench exits
// nonzero if any level leaks a connection or fails to shut down clean,
// which is what the CI smoke step asserts.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <mutex>
#include <thread>

#include "bench_common.hpp"
#include "graph/digest.hpp"
#include "server/checkpoint.hpp"
#include "server/client.hpp"
#include "server/server.hpp"
#include "server/wal.hpp"

namespace {

using namespace parsh;
using namespace parsh::server;

struct LevelStats {
  std::vector<double> latency_ms;  // per request, send to final verdict
  std::uint64_t ok = 0;
  std::uint64_t failed = 0;
  std::uint64_t retries = 0;
  std::uint64_t sheds_seen = 0;
  std::uint64_t deadline_seen = 0;
  std::uint64_t degraded_seen = 0;
  std::uint64_t reconnects = 0;
  double wall_s = 0;
  StatsSnapshot server;
};

struct LevelConfig {
  double offered_qps = 0;  // requests per second across all clients
  double duration_s = 1.0;
  int clients = 8;
  std::uint32_t deadline_ms = 25;
  int pairs_per_request = 16;
  std::uint64_t seed = 1;
};

LevelStats run_level(const Graph& g, const ApproxShortestPaths& engine,
                     double warm_ms_per_query, bool faults, const LevelConfig& lc) {
  ServerConfig cfg;
  cfg.query_workers = 1;
  cfg.admission.warm_ms_per_query_hint = std::max(warm_ms_per_query, 1e-3);
  cfg.admission.default_deadline_ms = lc.deadline_ms;
  // Degradation must engage *below* the shed point (estimated drain
  // exceeding the deadline budget), so the tier ladder under rising
  // load is: full fidelity -> degraded -> shed.
  cfg.admission.max_queue_depth = 16;
  cfg.admission.degrade_at_fraction = 0.125;
  cfg.admission.degrade_skip_scales = 1;
  if (faults) {
    cfg.enable_faults = true;
    cfg.fault_seed = lc.seed ^ 0xfa417ULL;
    cfg.faults.slow_write = 0.05;
    cfg.faults.tear_write = 0.02;
    cfg.faults.drop_connection = 0.02;
    cfg.faults.worker_stall = 0.05;
    cfg.faults.queue_spike = 0.05;
    cfg.faults.max_delay_us = 500;
    cfg.faults.max_spike = 8;
  }
  QueryServer srv(g, engine, cfg);
  Status s = srv.listen_tcp(0);
  if (!s.ok()) {
    std::fprintf(stderr, "bench_server: listen failed: %s\n", s.to_string().c_str());
    std::exit(1);
  }

  const int per_client =
      std::max(1, static_cast<int>(std::ceil(lc.offered_qps * lc.duration_s /
                                             static_cast<double>(lc.clients))));
  const double interval_s = static_cast<double>(lc.clients) / lc.offered_qps;

  LevelStats agg;
  std::mutex mu;
  Timer wall;
  std::vector<std::thread> threads;
  for (int c = 0; c < lc.clients; ++c) {
    threads.emplace_back([&, c] {
      ClientConfig ccfg;
      ccfg.max_retries = 2;
      ccfg.backoff_base_ms = 2;
      ccfg.backoff_max_ms = 50;
      ccfg.rpc_timeout_ms = 2000;
      ccfg.seed = lc.seed + static_cast<std::uint64_t>(c) * 101;
      QueryClient client;
      if (!QueryClient::connect_tcp(srv.port(), ccfg, &client).ok()) return;

      Rng rng(Rng(lc.seed).split(0x10ad + static_cast<std::uint64_t>(c)));
      const vid n = g.num_vertices();
      std::vector<double> latencies;
      std::uint64_t ok = 0, failed = 0;
      const auto t0 = std::chrono::steady_clock::now() +
                      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                          std::chrono::duration<double>(interval_s * c /
                                                        lc.clients));
      for (int i = 0; i < per_client; ++i) {
        // Open-loop pacing: request i is *due* at t0 + i*interval. A
        // thread that falls behind (the synchronous round trip took
        // longer than the interval) issues immediately, so realized
        // input rate — reported per level — is what the schedule could
        // actually push through blocking connections.
        const auto due = t0 + std::chrono::duration_cast<
                                  std::chrono::steady_clock::duration>(
                                  std::chrono::duration<double>(interval_s * i));
        std::this_thread::sleep_until(due);
        std::vector<std::pair<vid, vid>> pairs;
        pairs.reserve(static_cast<std::size_t>(lc.pairs_per_request));
        for (int p = 0; p < lc.pairs_per_request; ++p) {
          const std::uint64_t k =
              static_cast<std::uint64_t>(i) * static_cast<std::uint64_t>(
                                                  lc.pairs_per_request) +
              static_cast<std::uint64_t>(p);
          pairs.emplace_back(static_cast<vid>(rng.uniform_int(2 * k, n)),
                             static_cast<vid>(rng.uniform_int(2 * k + 1, n)));
        }
        // Latency is send-to-verdict and includes retry backoff: the
        // bound the service actually offers is "every request gets a
        // typed answer within the deadline + retry envelope", which is
        // exactly what must stay flat past the knee.
        const auto sent_at = std::chrono::steady_clock::now();
        QueryResponse resp;
        const Status qs = client.query(pairs, lc.deadline_ms, &resp);
        const double lat_ms =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - sent_at)
                .count();
        latencies.push_back(lat_ms);
        if (qs.ok()) {
          ++ok;
        } else {
          ++failed;
        }
      }
      const ClientStats cs = client.client_stats();
      client.close();
      std::lock_guard<std::mutex> lock(mu);
      agg.latency_ms.insert(agg.latency_ms.end(), latencies.begin(),
                            latencies.end());
      agg.ok += ok;
      agg.failed += failed;
      agg.retries += cs.retries;
      agg.sheds_seen += cs.sheds_seen;
      agg.deadline_seen += cs.deadline_seen;
      agg.degraded_seen += cs.degraded_seen;
      agg.reconnects += cs.reconnects;
    });
  }
  for (auto& t : threads) t.join();
  agg.wall_s = wall.seconds();
  agg.server = srv.stats();
  srv.stop();
  // The smoke contract: shutdown leaks nothing, every connection the
  // server ever opened was closed.
  if (srv.open_connections() != 0 ||
      srv.metrics().connections_opened.load() !=
          srv.metrics().connections_closed.load()) {
    std::fprintf(stderr, "bench_server: leaked connections after stop()\n");
    std::exit(1);
  }
  return agg;
}

// ---- ROADMAP item-3 headroom: durable update stream + crash recovery -------

struct UpdateStreamStats {
  std::vector<double> update_lat_ms;  // send to verdict, includes retries
  std::vector<double> query_lat_ms;   // interleaved reads during the stream
  std::uint64_t updates_ok = 0;
  std::uint64_t updates_failed = 0;
  std::uint64_t queries_ok = 0;
  std::uint64_t queries_failed = 0;
  std::uint64_t retries = 0;
  double wall_s = 0;
  StatsSnapshot server;
  std::uint64_t wal_bytes = 0;
  double recovery_ms = 0;
  std::uint64_t recovered_replayed = 0;
  std::uint64_t checkpoint_loaded = 0;
  std::uint64_t digest_match = 0;
};

/// Open-loop interleaved update/query stream against the durable dynamic
/// engine, then a simulated kill: drop the server and coordinator with the
/// directory as-is, reopen it (checkpoint load + WAL replay), and check the
/// recovered snapshot digests bit-identical to the last pre-kill epoch.
/// A digest mismatch is a bench failure (exit 1), same as a leaked
/// connection — it means the write-ahead contract lied.
UpdateStreamStats run_update_stream(const Graph& g, double eps,
                                    double warm_ms_per_query, bool faults,
                                    const LevelConfig& lc, int updaters,
                                    std::uint64_t checkpoint_every,
                                    double query_rps) {
  const char* tmp = std::getenv("TMPDIR");
  const std::string dir =
      std::string(tmp && *tmp ? tmp : "/tmp") + "/parsh_bench_durable";
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);

  DynamicApproxShortestPaths::Params dp;
  dp.epsilon = eps;
  dp.hopset.hopset.seed = lc.seed;
  DurabilityOptions opt;
  opt.dir = dir;
  opt.checkpoint_every = checkpoint_every;
  opt.wal.fsync = FsyncPolicy::kEveryBatch;
  std::unique_ptr<Durability> d;
  if (Status s = Durability::open(g, dp, opt, &d); !s.ok()) {
    std::fprintf(stderr, "bench_server: durable open: %s\n",
                 s.to_string().c_str());
    std::exit(1);
  }

  ServerConfig cfg;
  cfg.query_workers = 1;
  cfg.admission.warm_ms_per_query_hint = std::max(warm_ms_per_query, 1e-3);
  cfg.admission.default_deadline_ms = lc.deadline_ms;
  if (faults) {
    cfg.enable_faults = true;
    cfg.fault_seed = lc.seed ^ 0xd04aULL;
    cfg.faults.tear_write = 0.02;
    cfg.faults.drop_connection = 0.02;
    cfg.faults.wal_append_tear = 0.05;
    cfg.faults.wal_fsync_fail = 0.05;
    cfg.faults.checkpoint_write_fail = 0.1;
    cfg.faults.checkpoint_rename_fail = 0.1;
  }
  QueryServer srv(*d, cfg);
  if (Status s = srv.listen_tcp(0); !s.ok()) {
    std::fprintf(stderr, "bench_server: listen failed: %s\n",
                 s.to_string().c_str());
    std::exit(1);
  }

  UpdateStreamStats agg;
  std::mutex mu;
  Timer wall;
  const auto t0 = std::chrono::steady_clock::now();
  const auto stop_at = t0 + std::chrono::duration_cast<
                                std::chrono::steady_clock::duration>(
                                std::chrono::duration<double>(lc.duration_s));
  std::vector<std::thread> threads;

  // Updaters: open-loop at a fixed offered rate; an apply that outlasts
  // its interval charges the overrun to latency, not to the generator.
  const double update_interval_s = 0.01;  // 100 offered updates/s per updater
  for (int c = 0; c < updaters; ++c) {
    threads.emplace_back([&, c] {
      ClientConfig ccfg;
      ccfg.max_retries = 4;
      ccfg.backoff_base_ms = 2;
      ccfg.backoff_max_ms = 50;
      ccfg.rpc_timeout_ms = 5000;
      ccfg.seed = lc.seed + 7700 + static_cast<std::uint64_t>(c) * 13;
      QueryClient client;
      if (!QueryClient::connect_tcp(srv.port(), ccfg, &client).ok()) return;
      Rng rng(Rng(lc.seed).split(0xda7a + static_cast<std::uint64_t>(c)));
      const vid n = g.num_vertices();
      std::vector<double> lats;
      std::uint64_t ok = 0, failed = 0;
      for (int i = 0;; ++i) {
        const auto due = t0 + std::chrono::duration_cast<
                                  std::chrono::steady_clock::duration>(
                                  std::chrono::duration<double>(
                                      update_interval_s * (i + 1)));
        std::this_thread::sleep_until(std::min(due, stop_at));
        if (std::chrono::steady_clock::now() >= stop_at) break;
        std::vector<Edge> ins, rem;
        std::uint64_t k = static_cast<std::uint64_t>(i) * 8;
        for (int e2 = 0; e2 < 3; ++e2) {
          Edge e;
          e.u = static_cast<vid>(rng.uniform_int(k++, n));
          e.v = static_cast<vid>(rng.uniform_int(k++, n));
          e.w = static_cast<weight_t>(1 + rng.uniform_int(k++, 8));
          if (e.u != e.v) ins.push_back(e);
        }
        const auto sent_at = std::chrono::steady_clock::now();
        UpdateResponse resp;
        const Status us = client.update(std::move(ins), std::move(rem), &resp);
        lats.push_back(std::chrono::duration<double, std::milli>(
                           std::chrono::steady_clock::now() - sent_at)
                           .count());
        if (us.ok() && resp.status == StatusCode::kOk) {
          ++ok;
        } else {
          ++failed;
        }
      }
      const ClientStats cs = client.client_stats();
      client.close();
      std::lock_guard<std::mutex> lock(mu);
      agg.update_lat_ms.insert(agg.update_lat_ms.end(), lats.begin(),
                               lats.end());
      agg.updates_ok += ok;
      agg.updates_failed += failed;
      agg.retries += cs.retries;
    });
  }
  // Interleaved readers: the point of epoch-swapped serving is that the
  // update stream never blocks queries, so run them concurrently and
  // report their latency alongside.
  const int queriers = std::max(1, lc.clients - updaters);
  const double query_interval_s =
      static_cast<double>(queriers) / std::max(query_rps, 4.0);
  for (int c = 0; c < queriers; ++c) {
    threads.emplace_back([&, c] {
      ClientConfig ccfg;
      ccfg.max_retries = 2;
      ccfg.backoff_base_ms = 2;
      ccfg.backoff_max_ms = 50;
      ccfg.rpc_timeout_ms = 2000;
      ccfg.seed = lc.seed + 9900 + static_cast<std::uint64_t>(c) * 17;
      QueryClient client;
      if (!QueryClient::connect_tcp(srv.port(), ccfg, &client).ok()) return;
      Rng rng(Rng(lc.seed).split(0x9e4d + static_cast<std::uint64_t>(c)));
      const vid n = g.num_vertices();
      std::vector<double> lats;
      std::uint64_t ok = 0, failed = 0;
      for (int i = 0;; ++i) {
        const auto due = t0 + std::chrono::duration_cast<
                                  std::chrono::steady_clock::duration>(
                                  std::chrono::duration<double>(
                                      query_interval_s * (i + 1)));
        std::this_thread::sleep_until(std::min(due, stop_at));
        if (std::chrono::steady_clock::now() >= stop_at) break;
        std::vector<std::pair<vid, vid>> pairs;
        for (int p = 0; p < lc.pairs_per_request; ++p) {
          const std::uint64_t k =
              static_cast<std::uint64_t>(i) *
                  static_cast<std::uint64_t>(lc.pairs_per_request) +
              static_cast<std::uint64_t>(p);
          pairs.emplace_back(static_cast<vid>(rng.uniform_int(2 * k, n)),
                             static_cast<vid>(rng.uniform_int(2 * k + 1, n)));
        }
        const auto sent_at = std::chrono::steady_clock::now();
        QueryResponse resp;
        const Status qs = client.query(pairs, lc.deadline_ms, &resp);
        lats.push_back(std::chrono::duration<double, std::milli>(
                           std::chrono::steady_clock::now() - sent_at)
                           .count());
        if (qs.ok()) {
          ++ok;
        } else {
          ++failed;
        }
      }
      client.close();
      std::lock_guard<std::mutex> lock(mu);
      agg.query_lat_ms.insert(agg.query_lat_ms.end(), lats.begin(), lats.end());
      agg.queries_ok += ok;
      agg.queries_failed += failed;
    });
  }
  for (auto& t : threads) t.join();
  agg.wall_s = wall.seconds();
  agg.server = srv.stats();
  srv.stop();
  if (srv.open_connections() != 0) {
    std::fprintf(stderr, "bench_server: leaked connections after stop()\n");
    std::exit(1);
  }

  for (const std::string& seg : list_wal_segments(dir)) {
    agg.wal_bytes += std::filesystem::file_size(seg, ec);
  }

  // The simulated kill: remember what the last published epoch looked
  // like, drop everything without a checkpoint, and recover from disk.
  const std::uint64_t epoch = d->engine().epoch();
  const std::uint64_t dig = graph_digest(d->engine().snapshot()->graph);
  d.reset();
  std::unique_ptr<Durability> rec;
  if (Status s = Durability::open(g, dp, opt, &rec); !s.ok()) {
    std::fprintf(stderr, "bench_server: recovery open: %s\n",
                 s.to_string().c_str());
    std::exit(1);
  }
  agg.recovery_ms = rec->recovery().recovery_ms;
  agg.recovered_replayed = rec->recovery().replayed;
  agg.checkpoint_loaded = rec->recovery().checkpoint_loaded ? 1 : 0;
  agg.digest_match = (rec->engine().epoch() == epoch &&
                      graph_digest(rec->engine().snapshot()->graph) == dig)
                         ? 1
                         : 0;
  rec.reset();
  std::filesystem::remove_all(dir, ec);
  if (agg.digest_match == 0) {
    std::fprintf(stderr,
                 "bench_server: recovered state does not match the pre-kill "
                 "snapshot (epoch %llu)\n",
                 static_cast<unsigned long long>(epoch));
    std::exit(1);
  }
  return agg;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace parsh::bench;
  Cli cli(argc, argv);
  const double scale = cli.get_double("scale", 1.0);
  const vid n = scaled_n(static_cast<vid>(cli.get_int("n", 2000)), scale);
  const double eps = cli.get_double("eps", 0.25);
  const std::uint64_t seed = cli.get_seed("seed", 1);
  const std::string wl = cli.get("workload", "er");
  const bool faults = cli.get_bool("faults", false);
  LevelConfig lc;
  lc.duration_s = cli.get_double("duration", 1.0);
  lc.clients = static_cast<int>(cli.get_int("clients", 8));
  lc.deadline_ms = static_cast<std::uint32_t>(cli.get_int("deadline_ms", 25));
  lc.pairs_per_request = static_cast<int>(cli.get_int("pairs", 16));
  lc.seed = seed;
  const int updaters = static_cast<int>(cli.get_int("updaters", 2));
  const std::uint64_t checkpoint_every =
      static_cast<std::uint64_t>(cli.get_int("checkpoint_every", 32));

  Graph g = with_uniform_weights(workload(wl, n, seed), 1, 8, seed + 9);
  print_header("SERVER: open-loop saturation of the hardened query service", g,
               wl.c_str());

  ApproxShortestPaths::Params p;
  p.epsilon = eps;
  p.hopset.hopset.seed = seed;
  Timer prep;
  const ApproxShortestPaths engine(g, p);
  std::printf("preprocessing: %.2fs, %zu scales\n", prep.seconds(),
              engine.num_scales());

  // Warm per-query cost: the admission estimator's seed and the basis
  // for the offered-load sweep.
  SsspWorkspace ws;
  std::vector<ApproxShortestPaths::QueryPair> probe;
  Rng prng(seed ^ 0x9a9aULL);
  for (int i = 0; i < 32; ++i) {
    probe.push_back({static_cast<vid>(prng.uniform_int(2 * i, n)),
                     static_cast<vid>(prng.uniform_int(2 * i + 1, n))});
  }
  (void)engine.query_batch(probe, ws);  // cold: buffers warm up
  Timer twarm;
  (void)engine.query_batch(probe, ws);
  const double warm_ms = twarm.millis() / static_cast<double>(probe.size());
  const double capacity_rps =
      1e3 / std::max(warm_ms * lc.pairs_per_request, 1e-3);
  std::printf("warm query cost: %.4f ms/query => ~%.0f requests/s capacity at "
              "%d pairs/request\n\n",
              warm_ms, capacity_rps, lc.pairs_per_request);

  JsonReport report("server");
  Table table({"offered", "req/s in", "ok/s", "p50 ms", "p99 ms", "shed",
               "deadline", "degraded", "retries", "faults"});
  const std::pair<const char*, double> levels[] = {
      {"0.25x", 0.25}, {"0.5x", 0.5}, {"1x", 1.0}, {"2x", 2.0}, {"4x", 4.0}};
  for (const auto& [label, factor] : levels) {
    lc.offered_qps = std::max(capacity_rps * factor, 4.0);
    const LevelStats ls = run_level(g, engine, warm_ms, faults, lc);
    const double p50 = percentile(ls.latency_ms, 50);
    const double p99 = percentile(ls.latency_ms, 99);
    const double ok_rps = ls.wall_s > 0 ? ls.ok / ls.wall_s : 0;
    const std::uint64_t sent = ls.ok + ls.failed;
    const double in_rps = ls.wall_s > 0 ? sent / ls.wall_s : 0;
    const double shed_rate =
        sent > 0 ? static_cast<double>(ls.server.requests_shed) /
                       static_cast<double>(sent)
                 : 0;
    table.row()
        .cell(label)
        .cell(in_rps, 0)
        .cell(ok_rps, 0)
        .cell(p50, 2)
        .cell(p99, 2)
        .cell(static_cast<std::size_t>(ls.server.requests_shed))
        .cell(static_cast<std::size_t>(ls.server.queries_deadline_exceeded))
        .cell(static_cast<std::size_t>(ls.server.queries_degraded))
        .cell(static_cast<std::size_t>(ls.retries))
        .cell(static_cast<std::size_t>(ls.server.faults_injected));
    report.row()
        .field("workload", wl)
        .field("level", label)
        .field("n", static_cast<std::uint64_t>(n))
        .field("m", static_cast<std::uint64_t>(g.num_edges()))
        .field("eps", eps)
        .field("pairs", static_cast<std::uint64_t>(lc.pairs_per_request))
        .field("deadline_ms_budget", static_cast<std::uint64_t>(lc.deadline_ms))
        .field("faults_enabled", faults ? "true" : "false")
        .field("offered_rps", lc.offered_qps)
        .field("realized_in_rps", in_rps)
        .field("achieved_ok_rps", ok_rps)
        .field("p50_ms", p50)
        .field("p99_ms", p99)
        .field("requests_sent", sent)
        .field("requests_ok", ls.ok)
        .field("requests_failed", ls.failed)
        .field("shed", ls.server.requests_shed)
        .field("shed_rate", shed_rate)
        .field("deadline_exceeded", ls.server.queries_deadline_exceeded)
        .field("degraded", ls.server.queries_degraded)
        .field("client_retries", ls.retries)
        .field("client_reconnects", ls.reconnects)
        .field("faults_injected", ls.server.faults_injected);
  }
  table.print("offered load sweep, deadline=" + std::to_string(lc.deadline_ms) +
              "ms, " + std::to_string(lc.pairs_per_request) + " pairs/request");
  std::printf("\nReading guide: past the 1x knee the queue must NOT grow without\n"
              "bound — shed/deadline/degraded counters absorb the overload and the\n"
              "p99 column stays within the deadline + retry-backoff envelope.\n");

  // Durable update stream: interleaved writes/reads against the dynamic
  // engine with a WAL underneath, then a simulated kill + recovery.
  const UpdateStreamStats us =
      run_update_stream(g, eps, warm_ms, faults, lc, updaters, checkpoint_every,
                        capacity_rps * 0.5);
  const double up_rps = us.wall_s > 0 ? us.updates_ok / us.wall_s : 0;
  Table utable({"updates/s", "upd p50 ms", "upd p99 ms", "qry p99 ms",
                "wal KiB", "fsyncs", "ckpts", "recover ms", "replayed"});
  utable.row()
      .cell(up_rps, 1)
      .cell(percentile(us.update_lat_ms, 50), 2)
      .cell(percentile(us.update_lat_ms, 99), 2)
      .cell(percentile(us.query_lat_ms, 99), 2)
      .cell(static_cast<double>(us.wal_bytes) / 1024.0, 1)
      .cell(static_cast<std::size_t>(us.server.wal_fsyncs))
      .cell(static_cast<std::size_t>(us.server.checkpoints_written))
      .cell(us.recovery_ms, 1)
      .cell(static_cast<std::size_t>(us.recovered_replayed));
  utable.print("durable update stream (" + std::to_string(updaters) +
               " updaters, fsync every batch, checkpoint every " +
               std::to_string(checkpoint_every) +
               "), then kill + recovery; digests match");
  report.row()
      .field("workload", wl)
      .field("level", "update-stream")
      .field("n", static_cast<std::uint64_t>(n))
      .field("m", static_cast<std::uint64_t>(g.num_edges()))
      .field("eps", eps)
      .field("pairs", static_cast<std::uint64_t>(lc.pairs_per_request))
      .field("updaters", static_cast<std::uint64_t>(updaters))
      .field("checkpoint_every", checkpoint_every)
      .field("faults_enabled", faults ? "true" : "false")
      .field("realized_update_rps", up_rps)
      .field("update_p50_ms", percentile(us.update_lat_ms, 50))
      .field("update_p99_ms", percentile(us.update_lat_ms, 99))
      .field("interleaved_query_p99_ms", percentile(us.query_lat_ms, 99))
      .field("updates_ok", us.updates_ok)
      .field("updates_failed", us.updates_failed)
      .field("update_retries", us.retries)
      .field("queries_ok", us.queries_ok)
      .field("updates_applied", us.server.updates_applied)
      .field("updates_deduped", us.server.updates_deduped)
      .field("wal_records", us.server.wal_records)
      .field("wal_fsyncs", us.server.wal_fsyncs)
      .field("wal_bytes", us.wal_bytes)
      .field("checkpoints_written", us.server.checkpoints_written)
      .field("recovery_ms", us.recovery_ms)
      .field("recovered_replayed", us.recovered_replayed)
      .field("recovery_checkpoint_loaded", us.checkpoint_loaded)
      .field("recovery_digest_match", us.digest_match);

  const std::string path = report.save();
  if (!path.empty()) std::printf("wrote %s\n", path.c_str());
  return 0;
}
